//! PipelineSim: *pipeline sharding* over the nodes of one sharded model.
//!
//! [`crate::ClusterSim`] co-simulates N nodes serving **one** request at a
//! time: the whole cluster is occupied for the full latency of each
//! inference. This module keeps the same per-node machines and the same
//! conservative co-simulation invariants, but lets **different requests be
//! simultaneously resident on different nodes** — node 0 starts request
//! r+1 the moment it finishes its shard of request r, while nodes 1..N are
//! still working on r (and possibly r-1). That is the serving-throughput
//! story for models too large for one node: the pipeline's steady-state
//! throughput is set by the slowest *stage*, not by the end-to-end
//! latency.
//!
//! Mechanics:
//!
//! - Each node executes per-request *segments* via
//!   [`NodeSim::begin_segment`]: machine state resets between requests,
//!   but the clock is global and monotonic, so all latencies are measured
//!   on one shared simulated timeline.
//! - Inter-node packets are tagged with the request their sender was
//!   executing. A packet addressed to a node still working on an earlier
//!   request is *held* and injected when the destination node starts that
//!   request — sharded execution is a pure renumbering of the single-node
//!   program, so a request's packets are only ever consumed by the same
//!   request's segments, and outputs stay bit-identical to sequential
//!   execution.
//! - The scheduler always advances the globally earliest work and hands
//!   run-ahead nodes a conservative external horizon (in-flight packets,
//!   other resident nodes' next events, scheduled segment starts, and
//!   pending arrivals, each plus the link latency), exactly generalizing
//!   the [`crate::ClusterSim`] lookahead rule.
//!
//! Admission follows the serving queue model: requests arrive at given
//! cycles (in arrival order), wait in a bounded queue for the *entry
//! stage* (node 0), and are **shed** — rejected without executing — when
//! the queue is full at their arrival.

use crate::compiled::CompiledImage;
use crate::fifo::Packet;
use crate::machine::{NodeSim, SimEngine, SimMode};
use crate::stats::RunStats;
use puma_core::config::NodeConfig;
use puma_core::error::{PumaError, Result};
use puma_core::timing::InterconnectConfig;
use puma_isa::MachineImage;
use puma_xbar::NoiseModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One request submitted to [`PipelineSim::serve`].
#[derive(Debug, Clone)]
pub struct PipelineRequest {
    /// Simulated cycle at which the request arrives at the queue.
    pub arrival: u64,
    /// Host writes performed when a node starts this request's segment:
    /// `(input-binding name, values)`, routed to whichever node owns the
    /// binding. Writes shared by every request (model constants) go in
    /// [`PipelineSim::serve`]'s `common_writes` instead, so they are not
    /// duplicated per request.
    pub writes: Vec<(String, Vec<f32>)>,
}

/// Per-request outcome of a pipeline serve.
#[derive(Debug, Clone, Default)]
pub struct PipelineResult {
    /// False when the request was shed at admission (all other fields are
    /// then zero/empty).
    pub admitted: bool,
    /// Output-binding values read when each owning node retired its
    /// segment (keyed by binding name).
    pub outputs: HashMap<String, Vec<f32>>,
    /// Cycle the first node began executing this request.
    pub start: u64,
    /// Cycle the last node retired this request.
    pub finish: u64,
    /// Merged per-node segment statistics (node order, deterministic);
    /// `cycles` is the residency span `finish − start`.
    pub stats: RunStats,
    /// The typed fault that aborted this request, when a deadline
    /// watchdog fired for it ([`PipelineSim::serve_with_deadline`]).
    /// `None` for completed or shed requests.
    pub error: Option<PumaError>,
}

/// Occupancy accounting for one pipeline stage (node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Requests this stage retired.
    pub requests: u64,
    /// Total cycles a request was resident on this stage (busy or
    /// blocked on synchronization).
    pub occupied_cycles: u64,
    /// Of the occupied cycles, how many an agent spent parked on
    /// synchronization (waiting for packets from neighbouring stages).
    pub blocked_cycles: u64,
    /// Cycle this stage retired its last request.
    pub last_retire: u64,
}

/// Aggregate outcome of one [`PipelineSim::serve`] call.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-request outcomes, in submission order.
    pub results: Vec<PipelineResult>,
    /// Per-stage occupancy, indexed by node.
    pub stages: Vec<StageStats>,
    /// Maximum number of distinct requests simultaneously resident across
    /// the stages — `> 1` proves the pipeline actually overlapped
    /// requests.
    pub max_concurrent: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Cycle the last admitted request finished (0 if none).
    pub makespan: u64,
}

/// An inter-node packet in flight, tagged with the admitted-order
/// position of the request it belongs to.
#[derive(Debug)]
struct Flight {
    arrive_at: u64,
    seq: u64,
    dest_node: usize,
    dest_tile: u16,
    fifo: u8,
    packet: Packet,
    req: usize,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        (self.arrive_at, self.seq) == (other.arrive_at, other.seq)
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrive_at, self.seq).cmp(&(other.arrive_at, other.seq))
    }
}

/// A packet waiting for its destination node to start the request it
/// belongs to.
#[derive(Debug)]
struct HeldPacket {
    arrive_at: u64,
    seq: u64,
    tile: u16,
    fifo: u8,
    packet: Packet,
}

/// A cluster of node simulators serving a *stream* of requests with
/// pipeline overlap (see the module docs).
///
/// # Examples
///
/// See the `puma-testkit` `serving_differential` suite for end-to-end
/// usage against compiled sharded models.
#[derive(Debug)]
pub struct PipelineSim {
    nodes: Vec<NodeSim>,
    interconnect: InterconnectConfig,
    /// Input-binding name → owning node.
    input_owner: HashMap<String, usize>,
    /// Output-binding names per node.
    output_names: Vec<Vec<String>>,
}

impl PipelineSim {
    /// Builds one simulator per image over the default interconnect
    /// (mirrors [`crate::ClusterSim::new`]).
    ///
    /// # Errors
    ///
    /// Propagates per-node construction failures; rejects an empty image
    /// list and clusters larger than the 256-node `send` addressing range.
    pub fn new(
        cfg: NodeConfig,
        images: &[MachineImage],
        mode: SimMode,
        noise: &NoiseModel,
    ) -> Result<Self> {
        Self::with_interconnect(cfg, images, mode, noise, InterconnectConfig::default())
    }

    /// [`PipelineSim::new`] with an explicit interconnect model.
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::new`].
    pub fn with_interconnect(
        cfg: NodeConfig,
        images: &[MachineImage],
        mode: SimMode,
        noise: &NoiseModel,
        interconnect: InterconnectConfig,
    ) -> Result<Self> {
        if images.is_empty() {
            return Err(PumaError::InvalidConfig {
                what: "a pipeline needs at least one node image".to_string(),
            });
        }
        if images.len() > u8::MAX as usize + 1 {
            return Err(PumaError::InvalidConfig {
                what: format!("{} nodes exceed the 256-node send addressing range", images.len()),
            });
        }
        let mut nodes = Vec::with_capacity(images.len());
        for (i, image) in images.iter().enumerate() {
            let mut sim = NodeSim::new(cfg, image, mode, noise)?;
            sim.join_cluster(i as u16, images.len() as u16, interconnect);
            nodes.push(sim);
        }
        let mut input_owner = HashMap::new();
        let mut output_names = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            for name in node.input_names() {
                input_owner.insert(name.to_string(), i);
            }
            output_names.push(node.output_names().iter().map(|s| s.to_string()).collect());
        }
        Ok(PipelineSim { nodes, interconnect, input_owner, output_names })
    }

    /// Number of pipeline stages (nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Selects the execution engine on every node.
    pub fn set_engine(&mut self, engine: SimEngine) {
        for node in &mut self.nodes {
            node.set_engine(engine);
        }
    }

    /// The per-node pre-decoded images backing [`SimEngine::Compiled`],
    /// in node order (see [`crate::ClusterSim::compiled_images`]).
    pub fn compiled_images(&self) -> Option<Vec<Arc<CompiledImage>>> {
        self.nodes.iter().map(NodeSim::compiled_image).collect()
    }

    /// Adopts pre-decoded images compiled by a replica of the same
    /// sharded model, one per node in node order (see
    /// [`NodeSim::adopt_compiled_image`]).
    pub fn adopt_compiled_images(&mut self, images: &[Arc<CompiledImage>]) {
        debug_assert_eq!(images.len(), self.nodes.len(), "one compiled image per node");
        for (node, image) in self.nodes.iter_mut().zip(images) {
            node.adopt_compiled_image(Arc::clone(image));
        }
    }

    /// Overrides the runaway-simulation safety cap on every node. The cap
    /// is measured on the *global* pipeline clock, shared by all requests
    /// of a serve call.
    pub fn set_max_cycles(&mut self, max_cycles: u64) {
        for node in &mut self.nodes {
            node.set_max_cycles(max_cycles);
        }
    }

    /// Serves a stream of requests through the pipeline and returns
    /// per-request outcomes plus per-stage occupancy.
    ///
    /// `common_writes` are input-binding writes performed at the start of
    /// *every* request's segment before the request's own writes — model
    /// constants, shared across requests so callers need not duplicate
    /// them per request. `requests` must be sorted by non-decreasing
    /// `arrival` (the submission queue is arrival-ordered); `queue_depth`
    /// bounds the entry queue (`None` = unbounded, `Some(0)` = admit only
    /// when the entry stage is idle). Every call starts from a clean
    /// machine state at cycle 0 and is fully deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::InvalidConfig`] for unsorted arrivals,
    /// [`PumaError::Deadlock`] when the pipeline quiesces with requests
    /// still in flight (the message names each blocked node/tile/agent
    /// and the FIFO or memory word it waits on), and propagates per-node
    /// execution faults.
    pub fn serve(
        &mut self,
        common_writes: &[(String, Vec<f32>)],
        requests: &[PipelineRequest],
        queue_depth: Option<usize>,
    ) -> Result<PipelineReport> {
        self.serve_with_deadline(common_writes, requests, queue_depth, None)
    }

    /// [`PipelineSim::serve`] with a per-request virtual-time deadline
    /// watchdog: an admitted request still unfinished `deadline` cycles
    /// after its arrival is aborted at exactly `arrival + deadline` on
    /// the shared clock. Its stages are reclaimed (free for the next
    /// request from the abort cycle), its in-flight and held packets are
    /// dropped, and its [`PipelineResult::error`] records the typed
    /// fault — [`PumaError::FaultedTile`] when an injected tile death
    /// fired on a stage serving it, [`PumaError::DeadlineExceeded`]
    /// otherwise, each naming the stalled node/tile/agent via the
    /// blocked-agent summary. The serve call itself still succeeds:
    /// watchdog aborts degrade single requests, not the whole stream.
    ///
    /// The abort cycle and the reclaimed stages' free times are virtual
    /// times, so deadline-aborted serves replay bit-identically across
    /// engines (same-cycle progress is processed before the abort).
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::serve`]; with a deadline, a stalled request is
    /// reported per-request instead of failing the serve.
    pub fn serve_with_deadline(
        &mut self,
        common_writes: &[(String, Vec<f32>)],
        requests: &[PipelineRequest],
        queue_depth: Option<usize>,
        deadline: Option<u64>,
    ) -> Result<PipelineReport> {
        if requests.windows(2).any(|w| w[0].arrival > w[1].arrival) {
            return Err(PumaError::InvalidConfig {
                what: "pipeline requests must be sorted by arrival time".to_string(),
            });
        }
        for node in &mut self.nodes {
            node.reset();
        }
        let n_nodes = self.nodes.len();
        let lat = self.interconnect.latency_cycles.max(1);
        let mut state = ServeState::new(requests.len(), n_nodes);

        // What advances next: deliveries outrank segment starts outrank
        // node events outrank arrivals outrank watchdog aborts at equal
        // times, then lower node index — a fixed total order, so the
        // co-simulation replays identically. Node events precede
        // same-cycle arrivals so that a departure at cycle T is visible
        // to a request arriving at T (matching the virtual-time schedule
        // of the replicated pool); aborts come last so a request that
        // finishes exactly at its deadline completes.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Action {
            Deliver,
            Start(usize),
            Step(usize),
            Arrive,
            Abort(usize),
        }

        loop {
            let t_deliver = state.flights.peek().map(|Reverse(f)| (f.arrive_at, Action::Deliver));
            let t_start = state
                .start_sched
                .iter()
                .enumerate()
                .filter_map(|(j, s)| s.map(|s| (s, Action::Start(j))))
                .min();
            let t_arrive = requests.get(state.arr_ptr).map(|r| (r.arrival, Action::Arrive));
            let t_step = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(j, _)| state.resident[j].is_some())
                .filter_map(|(j, n)| n.next_event_time().map(|t| (t, Action::Step(j))))
                .min();
            // Admitted requests are in arrival order, so the first
            // unfinished one carries the earliest deadline.
            let t_abort = deadline.and_then(|d| {
                (0..state.admitted.len()).find(|&k| state.retired_nodes[k] < n_nodes).map(|k| {
                    (requests[state.admitted[k]].arrival.saturating_add(d), Action::Abort(k))
                })
            });
            let Some((_, action)) =
                [t_deliver, t_start, t_arrive, t_step, t_abort].into_iter().flatten().min()
            else {
                break;
            };
            match action {
                Action::Deliver => {
                    let Reverse(flight) = state.flights.pop().expect("peeked above");
                    debug_assert_eq!(state.resident[flight.dest_node], Some(flight.req));
                    self.nodes[flight.dest_node].deliver_external(
                        flight.dest_tile,
                        flight.fifo,
                        flight.packet,
                        flight.arrive_at,
                    )?;
                }
                Action::Start(j) => {
                    let s = state.start_sched[j].take().expect("selected above");
                    let k = state.next_k[j];
                    let r = state.admitted[k];
                    self.nodes[j].begin_segment(s)?;
                    for (name, values) in common_writes.iter().chain(&requests[r].writes) {
                        if self.input_owner.get(name.as_str()) == Some(&j) {
                            self.nodes[j].write_input(name, values)?;
                        }
                    }
                    state.resident[j] = Some(k);
                    state.seg_start[j] = s;
                    if j == 0 {
                        state.entry_started += 1;
                    }
                    state.first_start[k] = state.first_start[k].min(s);
                    if let Some(mut packets) = state.held.remove(&(j, k)) {
                        packets.sort_by_key(|p| (p.arrive_at, p.seq));
                        for p in packets {
                            self.nodes[j].deliver_external(
                                p.tile,
                                p.fifo,
                                p.packet,
                                p.arrive_at.max(s),
                            )?;
                        }
                    }
                    let concurrent = state
                        .resident
                        .iter()
                        .flatten()
                        .collect::<std::collections::HashSet<_>>()
                        .len();
                    state.max_concurrent = state.max_concurrent.max(concurrent);
                    // A stage with no work for this request (e.g. an idle
                    // shard) quiesces instantly.
                    self.retire_if_quiescent(j, &mut state, requests)?;
                }
                Action::Arrive => {
                    let r = state.arr_ptr;
                    state.arr_ptr += 1;
                    let t = requests[r].arrival;
                    let waiting = state.admitted.len() - state.entry_started;
                    // The entry worker counts as idle only once its last
                    // segment's span has elapsed (`free_at`): run-ahead may
                    // *process* a retirement early, but the stage is still
                    // busy until its simulated completion time — admission
                    // must not depend on the engine's processing order.
                    let entry_idle = state.resident[0].is_none()
                        && state.start_sched[0].is_none()
                        && state.free_at[0] <= t;
                    let admit = match queue_depth {
                        None => true,
                        Some(depth) => waiting < depth || (waiting == 0 && entry_idle),
                    };
                    if !admit {
                        state.shed += 1;
                        continue;
                    }
                    let k = state.admitted.len();
                    state.admitted.push(r);
                    state.results[r].admitted = true;
                    state.first_start.push(u64::MAX);
                    state.finish.push(0);
                    state.retired_nodes.push(0);
                    state.aborted.push(false);
                    state.seg_stats.push(vec![None; n_nodes]);
                    for j in 0..n_nodes {
                        if state.next_k[j] == k
                            && state.resident[j].is_none()
                            && state.start_sched[j].is_none()
                        {
                            state.start_sched[j] = Some(t.max(state.free_at[j]));
                        }
                    }
                }
                Action::Step(j) => {
                    // Conservative run-ahead horizon: the earliest cycle
                    // any external packet could still reach this node —
                    // through an in-flight packet, a send from another
                    // resident node's next event, a segment that is
                    // scheduled to start, or a request that has not even
                    // arrived yet (each send needs ≥ latency + 1 cycles
                    // to land).
                    let mut horizon =
                        state.flights.peek().map_or(u64::MAX, |Reverse(f)| f.arrive_at);
                    for (j2, node) in self.nodes.iter().enumerate() {
                        if j2 != j && state.resident[j2].is_some() {
                            if let Some(t) = node.next_event_time() {
                                horizon = horizon.min(t.saturating_add(lat));
                            }
                        }
                    }
                    for s in state.start_sched.iter().flatten() {
                        horizon = horizon.min(s.saturating_add(lat));
                    }
                    if let Some(req) = requests.get(state.arr_ptr) {
                        horizon = horizon.min(req.arrival.saturating_add(lat));
                    }
                    self.nodes[j].set_external_horizon(horizon);
                    self.nodes[j].step_one()?;
                    let k = state.resident[j].expect("only resident nodes are stepped");
                    for out in self.nodes[j].take_outbox() {
                        let dest = out.node as usize;
                        if state.next_k[dest] > k {
                            return Err(PumaError::Execution {
                                what: format!(
                                    "node{j} sent a packet for request {} to node{dest}, which \
                                     already retired that request (un-received send in the \
                                     sharded program?)",
                                    state.admitted[k]
                                ),
                            });
                        }
                        state.flight_seq += 1;
                        if state.resident[dest] == Some(k) {
                            state.flights.push(Reverse(Flight {
                                arrive_at: out.arrive_at,
                                seq: state.flight_seq,
                                dest_node: dest,
                                dest_tile: out.tile,
                                fifo: out.fifo,
                                packet: out.packet,
                                req: k,
                            }));
                        } else {
                            state.held.entry((dest, k)).or_default().push(HeldPacket {
                                arrive_at: out.arrive_at,
                                seq: state.flight_seq,
                                tile: out.tile,
                                fifo: out.fifo,
                                packet: out.packet,
                            });
                        }
                    }
                    self.retire_if_quiescent(j, &mut state, requests)?;
                }
                Action::Abort(k) => {
                    let d = deadline.expect("abort scheduled only under a deadline");
                    let r = state.admitted[k];
                    let at = requests[r].arrival.saturating_add(d);
                    // Typed diagnosis: a fired tile death on a stage
                    // serving this request outranks the generic deadline.
                    let stalls: Vec<String> = self
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| state.resident[j] == Some(k))
                        .flat_map(|(j, n)| {
                            n.blocked_summary().into_iter().map(move |s| format!("node{j}/{s}"))
                        })
                        .collect();
                    let what = if stalls.is_empty() {
                        format!("request {r} still executing at its {d}-cycle deadline")
                    } else {
                        format!(
                            "request {r} stalled at its {d}-cycle deadline: {}",
                            stalls.join(", ")
                        )
                    };
                    let death = self
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| state.resident[j] == Some(k))
                        .find_map(|(j, n)| {
                            n.fired_tile_death().map(|(tile, cycle)| (j, tile, cycle))
                        });
                    state.results[r].error = Some(match death {
                        Some((node, tile, cycle)) => {
                            PumaError::FaultedTile { node, tile: tile as usize, cycle, what }
                        }
                        None => PumaError::DeadlineExceeded { cycle: at, what },
                    });
                    // Reclaim the request's stages and packets. A stage
                    // it occupied frees at the abort cycle; a stage that
                    // never reached it skips straight past (the entry
                    // stage counts it started for admission accounting).
                    if state.resident[0] != Some(k) && state.next_k[0] <= k {
                        state.entry_started += 1;
                    }
                    state.flights.retain(|Reverse(f)| f.req != k);
                    state.held.retain(|&(_, kk), _| kk != k);
                    for j in 0..n_nodes {
                        if state.next_k[j] == k {
                            state.start_sched[j] = None;
                        }
                        if state.resident[j] == Some(k) {
                            // Discard the partial segment; the machine
                            // itself is wiped by its next begin_segment.
                            let _ = self.nodes[j].take_segment_stats();
                            state.resident[j] = None;
                            state.free_at[j] = state.free_at[j].max(at);
                            state.next_k[j] += 1;
                        } else if state.next_k[j] == k {
                            state.next_k[j] += 1;
                        }
                        if state.resident[j].is_none()
                            && state.start_sched[j].is_none()
                            && state.next_k[j] < state.admitted.len()
                        {
                            let next_arrival = requests[state.admitted[state.next_k[j]]].arrival;
                            // Never before the abort: the watchdog only
                            // frees the stage at the deadline cycle.
                            state.start_sched[j] = Some(state.free_at[j].max(next_arrival).max(at));
                        }
                    }
                    state.aborted[k] = true;
                    state.retired_nodes[k] = n_nodes;
                    state.finish[k] = at;
                    state.results[r].start =
                        if state.first_start[k] == u64::MAX { 0 } else { state.first_start[k] };
                    state.results[r].finish = at;
                }
            }
        }

        // Quiescent. Any admitted request not retired everywhere is a
        // pipeline deadlock; name every stalled synchronization (and any
        // packets still parked, in case nothing is blocked — a defensive
        // diagnostic for malformed programs).
        if state.retired_nodes.iter().any(|&n| n < n_nodes) {
            let mut blocked: Vec<String> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(j, _)| state.resident[j].is_some())
                .flat_map(|(j, n)| {
                    let req = state.admitted[state.resident[j].expect("filtered")];
                    n.blocked_summary()
                        .into_iter()
                        .map(move |s| format!("node{j}/request{req}/{s}"))
                })
                .collect();
            let parked: usize = state.held.values().map(Vec::len).sum();
            if parked > 0 {
                blocked.push(format!("{parked} packets held for requests that never started"));
            }
            let cycle = self.nodes.iter().map(NodeSim::last_time).max().unwrap_or(0);
            let what =
                format!("pipeline quiescent with {} stalls: {}", blocked.len(), blocked.join(", "));
            // An injected tile death that fired on any stage converts
            // the stall into a typed fault naming the dead tile.
            for (j, node) in self.nodes.iter().enumerate() {
                if let Some((tile, at)) = node.fired_tile_death() {
                    return Err(PumaError::FaultedTile {
                        node: j,
                        tile: tile as usize,
                        cycle: at,
                        what,
                    });
                }
            }
            return Err(PumaError::Deadlock { cycle, what });
        }

        let makespan = state.finish.iter().copied().max().unwrap_or(0);
        Ok(PipelineReport {
            results: state.results,
            stages: state.stages,
            max_concurrent: state.max_concurrent,
            shed: state.shed,
            makespan,
        })
    }

    /// Retires node `j`'s segment if it has quiesced for its resident
    /// request: no queued events, no blocked agents, and no in-flight
    /// packets still addressed to it. Reads the node's outputs *before*
    /// the machine is reused, folds its segment statistics into the
    /// request, and schedules the node's next segment.
    fn retire_if_quiescent(
        &mut self,
        j: usize,
        state: &mut ServeState,
        requests: &[PipelineRequest],
    ) -> Result<()> {
        let Some(k) = state.resident[j] else { return Ok(()) };
        if self.nodes[j].next_event_time().is_some()
            || self.nodes[j].blocked_count() > 0
            || state.flights.iter().any(|Reverse(f)| f.dest_node == j)
        {
            return Ok(());
        }
        let end = self.nodes[j].last_time();
        let r = state.admitted[k];
        for name in &self.output_names[j] {
            let values = self.nodes[j].read_output(name)?;
            state.results[r].outputs.insert(name.clone(), values);
        }
        let seg = self.nodes[j].take_segment_stats();
        state.stages[j].requests += 1;
        state.stages[j].occupied_cycles += end - state.seg_start[j];
        state.stages[j].blocked_cycles += seg.blocked_cycles;
        state.stages[j].last_retire = end;
        state.seg_stats[k][j] = Some(seg);
        state.resident[j] = None;
        state.free_at[j] = end;
        state.next_k[j] += 1;
        // Skip admitted positions the deadline watchdog aborted: their
        // segments must never start (admission accounting for them was
        // settled at the abort).
        while state.next_k[j] < state.admitted.len() && state.aborted[state.next_k[j]] {
            state.next_k[j] += 1;
        }
        state.retired_nodes[k] += 1;
        state.finish[k] = state.finish[k].max(end);
        if state.retired_nodes[k] == self.nodes.len() {
            let mut stats = RunStats::new();
            for seg in state.seg_stats[k].iter().flatten() {
                stats.merge(seg);
            }
            stats.cycles = state.finish[k] - state.first_start[k];
            state.results[r].start = state.first_start[k];
            state.results[r].finish = state.finish[k];
            state.results[r].stats = stats;
        }
        if state.next_k[j] < state.admitted.len() {
            let next_arrival = requests[state.admitted[state.next_k[j]]].arrival;
            state.start_sched[j] = Some(state.free_at[j].max(next_arrival));
        }
        Ok(())
    }
}

/// Mutable state of one [`PipelineSim::serve`] call, bundled so the
/// serve loop and [`PipelineSim::retire_if_quiescent`] share it without
/// threading a dozen loose parameters.
#[derive(Debug)]
struct ServeState {
    /// Next unprocessed arrival (index into the request slice).
    arr_ptr: usize,
    /// Admitted pos `k` → request index.
    admitted: Vec<usize>,
    /// Admitted requests whose entry-stage (node 0) segment has started.
    entry_started: usize,
    /// Per node: the admitted pos currently resident (`None` = free).
    resident: Vec<Option<usize>>,
    /// Per node: start cycle of the current segment.
    seg_start: Vec<u64>,
    /// Per node: completion cycle of the last retired segment.
    free_at: Vec<u64>,
    /// Per node: the admitted pos it serves next (stages process every
    /// admitted request in admission order).
    next_k: Vec<usize>,
    /// Per node: the scheduled start cycle of its next segment.
    start_sched: Vec<Option<u64>>,
    /// Per admitted pos: earliest segment start across nodes.
    first_start: Vec<u64>,
    /// Per admitted pos: latest retirement across nodes.
    finish: Vec<u64>,
    /// Per admitted pos: nodes that have retired it.
    retired_nodes: Vec<usize>,
    /// Per admitted pos: aborted by the deadline watchdog (stages skip
    /// it when advancing).
    aborted: Vec<bool>,
    /// Per admitted pos: per-node segment statistics.
    seg_stats: Vec<Vec<Option<RunStats>>>,
    /// In-flight inter-node packets (destination resident on the match).
    flights: BinaryHeap<Reverse<Flight>>,
    flight_seq: u64,
    /// Packets parked until `(node, admitted pos)` starts.
    held: HashMap<(usize, usize), Vec<HeldPacket>>,
    /// Per-request outcomes under construction (by request index).
    results: Vec<PipelineResult>,
    /// Per-stage occupancy under construction.
    stages: Vec<StageStats>,
    max_concurrent: usize,
    shed: usize,
}

impl ServeState {
    fn new(n_requests: usize, n_nodes: usize) -> Self {
        ServeState {
            arr_ptr: 0,
            admitted: Vec::new(),
            entry_started: 0,
            resident: vec![None; n_nodes],
            seg_start: vec![0; n_nodes],
            free_at: vec![0; n_nodes],
            next_k: vec![0; n_nodes],
            start_sched: vec![None; n_nodes],
            first_start: Vec::new(),
            finish: Vec::new(),
            retired_nodes: Vec::new(),
            aborted: Vec::new(),
            seg_stats: Vec::new(),
            flights: BinaryHeap::new(),
            flight_seq: 0,
            held: HashMap::new(),
            results: vec![PipelineResult::default(); n_requests],
            stages: vec![StageStats::default(); n_nodes],
            max_concurrent: 0,
            shed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puma_core::config::{CoreConfig, MvmuConfig, TileConfig};
    use puma_core::ids::{CoreId, TileId};
    use puma_isa::asm::assemble;
    use puma_isa::{IoBinding, Program};

    fn tiny_config() -> NodeConfig {
        let mvmu = MvmuConfig { dim: 16, ..MvmuConfig::default() };
        NodeConfig {
            tile: TileConfig {
                core: CoreConfig {
                    mvmu,
                    mvmus_per_core: 2,
                    vfu_lanes: 4,
                    instruction_memory_bytes: 4096,
                    register_file_words: 256,
                },
                cores_per_tile: 2,
                shared_memory_bytes: 4096,
                ..TileConfig::default()
            },
            tiles_per_node: 4,
            ..NodeConfig::default()
        }
    }

    fn asm_program(source: &str) -> Program {
        Program::from_instructions(assemble(source).unwrap())
    }

    /// Node 0 forwards its input "x" to node 1; node 1 doubles it into
    /// output "y". Node 0's shard is short (one send), node 1's is longer
    /// — the natural pipeline shape.
    fn two_stage_images() -> Vec<MachineImage> {
        let mut n0 = MachineImage::new(1, 2, 2);
        n0.tiles[0].program = asm_program("send @0 f3 t0 4 n1\nhalt\n");
        n0.inputs.push(IoBinding {
            name: "x".into(),
            tile: TileId::new(0),
            addr: 0,
            width: 4,
            count: 1,
        });
        let mut n1 = MachineImage::new(1, 2, 2);
        n1.tiles[0].program = asm_program("recv @8 f3 1 4\nhalt\n");
        n1.core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("load r0 @8 4\nadd r4 r0 r0 4\nstore @32 r4 1 4\nhalt\n");
        n1.outputs.push(IoBinding {
            name: "y".into(),
            tile: TileId::new(0),
            addr: 32,
            width: 4,
            count: 1,
        });
        vec![n0, n1]
    }

    fn pipeline(images: &[MachineImage], engine: SimEngine) -> PipelineSim {
        let mut sim =
            PipelineSim::new(tiny_config(), images, SimMode::Functional, &NoiseModel::noiseless())
                .unwrap();
        sim.set_engine(engine);
        sim
    }

    fn request(arrival: u64, x: f32) -> PipelineRequest {
        PipelineRequest { arrival, writes: vec![("x".to_string(), vec![x; 4])] }
    }

    #[test]
    fn pipelined_requests_keep_their_own_data() {
        for engine in [SimEngine::Reference, SimEngine::RunAhead, SimEngine::Compiled] {
            let mut sim = pipeline(&two_stage_images(), engine);
            let requests: Vec<PipelineRequest> =
                (0..5).map(|i| request(0, 0.25 * (i + 1) as f32)).collect();
            let report = sim.serve(&[], &requests, None).unwrap();
            assert_eq!(report.shed, 0, "{engine:?}");
            for (i, result) in report.results.iter().enumerate() {
                assert!(result.admitted);
                let want = 0.5 * (i + 1) as f32;
                let got = &result.outputs["y"];
                assert_eq!(got, &vec![want; 4], "{engine:?}: request {i}");
                assert!(result.finish > result.start, "{engine:?}");
            }
            assert!(
                report.max_concurrent > 1,
                "{engine:?}: stage 0 must overlap with stage 1 ({report:?})"
            );
            assert_eq!(report.stages[0].requests, 5);
            assert_eq!(report.stages[1].requests, 5);
            assert!(report.makespan >= report.results[4].finish);
        }
    }

    #[test]
    fn engines_agree_on_the_pipeline_timeline() {
        let run = |engine: SimEngine| {
            let mut sim = pipeline(&two_stage_images(), engine);
            let requests: Vec<PipelineRequest> =
                (0..4).map(|i| request(100 * i, 0.1 * (i + 1) as f32)).collect();
            let report = sim.serve(&[], &requests, None).unwrap();
            report
                .results
                .iter()
                .map(|r| (r.outputs.clone(), r.start, r.finish, r.stats.clone()))
                .collect::<Vec<_>>()
        };
        let reference = run(SimEngine::Reference);
        assert_eq!(reference, run(SimEngine::RunAhead));
        assert_eq!(reference, run(SimEngine::Compiled));
    }

    #[test]
    fn serve_replays_identically() {
        let mut sim = pipeline(&two_stage_images(), SimEngine::RunAhead);
        let requests: Vec<PipelineRequest> =
            (0..3).map(|i| request(50 * i, 0.2 * (i + 1) as f32)).collect();
        let a = sim.serve(&[], &requests, None).unwrap();
        let b = sim.serve(&[], &requests, None).unwrap();
        for (ra, rb) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(ra.outputs, rb.outputs);
            assert_eq!((ra.start, ra.finish), (rb.start, rb.finish));
            assert_eq!(ra.stats, rb.stats);
        }
        assert_eq!(a.stages, b.stages);
    }

    #[test]
    fn bounded_queue_sheds_at_admission() {
        let mut sim = pipeline(&two_stage_images(), SimEngine::default());
        // All requests arrive at once; with no waiting room only the one
        // that finds the entry stage idle is admitted.
        let requests: Vec<PipelineRequest> =
            (0..4).map(|i| request(0, 0.1 * (i + 1) as f32)).collect();
        let report = sim.serve(&[], &requests, Some(0)).unwrap();
        assert!(report.results[0].admitted);
        assert_eq!(report.shed, 3);
        assert!(!report.results[1].admitted && report.results[1].outputs.is_empty());
        // A depth-2 queue admits the first three.
        let report = sim.serve(&[], &requests, Some(2)).unwrap();
        assert_eq!(report.shed, 1);
        assert_eq!(
            report.results.iter().filter(|r| r.admitted).count(),
            3,
            "one in service + two queued"
        );
    }

    #[test]
    fn pipeline_deadlock_names_the_blocked_synchronization() {
        // Node 1 waits on a FIFO nobody feeds.
        let mut n1 = MachineImage::new(1, 2, 2);
        n1.tiles[0].program = asm_program("recv @8 f3 1 4\nhalt\n");
        let images = vec![MachineImage::new(1, 2, 2), n1];
        let mut sim = pipeline(&images, SimEngine::default());
        let requests = vec![PipelineRequest { arrival: 0, writes: vec![] }];
        match sim.serve(&[], &requests, None) {
            Err(PumaError::Deadlock { what, .. }) => {
                assert!(what.contains("node1/request0/tile0/ctl"), "{what}");
                assert!(what.contains("fifo f3"), "{what}");
            }
            other => panic!("expected pipeline deadlock, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_arrivals_are_rejected() {
        let mut sim = pipeline(&two_stage_images(), SimEngine::default());
        let requests = vec![request(10, 0.1), request(5, 0.2)];
        assert!(matches!(sim.serve(&[], &requests, None), Err(PumaError::InvalidConfig { .. })));
    }

    #[test]
    fn stage_occupancy_accounts_blocking() {
        let mut sim = pipeline(&two_stage_images(), SimEngine::default());
        let requests: Vec<PipelineRequest> =
            (0..3).map(|i| request(0, 0.1 * (i + 1) as f32)).collect();
        let report = sim.serve(&[], &requests, None).unwrap();
        for stage in &report.stages {
            assert!(stage.occupied_cycles > 0);
            assert!(stage.last_retire > 0);
        }
        // Stage 1 spends part of its residency blocked on the recv (the
        // count sums over agents, so it can exceed the wall-clock span).
        assert!(report.stages[1].blocked_cycles > 0);
    }
}
