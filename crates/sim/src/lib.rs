//! PUMAsim: functional, timing, and energy simulator for the PUMA node.
//!
//! The module layout follows the microarchitecture of the paper:
//!
//! - [`machine`] — the node-level discrete-event engine: cores (3-stage
//!   in-order pipelines, Fig. 1), tiles (Fig. 5), and the on-chip network;
//! - [`memory`] — tile shared memory with the valid/count attribute buffer
//!   (inter-core synchronization, Fig. 6);
//! - [`cluster`] / [`pipeline`] — multi-node co-simulation of sharded
//!   models: one request at a time ([`ClusterSim`]) or a pipelined request
//!   stream with different requests resident on different nodes
//!   ([`PipelineSim`]);
//! - [`compiled`] — programs pre-decoded at image load into dense
//!   micro-op segments with precomputed per-op costs ([`SimEngine::Compiled`]);
//! - [`fifo`] — the receive buffer (N FIFOs × M entries, §4.2);
//! - [`regfile`] — XbarIn/XbarOut/general register banks;
//! - [`lut`] — ROM-embedded RAM transcendental lookups (§3.4.1);
//! - [`stats`] — per-component energy/latency accounting.
//!
//! # Examples
//!
//! Running a hand-assembled program on one core:
//!
//! ```
//! use puma_core::config::{CoreConfig, MvmuConfig, NodeConfig, TileConfig};
//! use puma_core::ids::{CoreId, TileId};
//! use puma_core::tensor::Matrix;
//! use puma_isa::{asm, IoBinding, MachineImage, Program};
//! use puma_sim::{NodeSim, SimMode};
//! use puma_xbar::NoiseModel;
//!
//! # fn main() -> puma_core::Result<()> {
//! let mvmu = MvmuConfig { dim: 16, ..MvmuConfig::default() };
//! let core = CoreConfig { mvmu, mvmus_per_core: 2, register_file_words: 64,
//!     ..CoreConfig::default() };
//! let tile = TileConfig { core, cores_per_tile: 2, ..TileConfig::default() };
//! let cfg = NodeConfig { tile, tiles_per_node: 1, ..NodeConfig::default() };
//!
//! let mut image = MachineImage::new(1, 2, 2);
//! image.core_mut(TileId::new(0), CoreId::new(0)).program = Program::from_instructions(
//!     asm::assemble("load xi0 @0 16\nmvm 1 0 0\nstore @16 xo0 1 16\nhalt\n")?,
//! );
//! image.core_mut(TileId::new(0), CoreId::new(0)).mvmu_weights[0] =
//!     Some(Matrix::from_fn(16, 16, |r, c| ((r == c) as u8) as f32).quantize());
//! image.inputs.push(IoBinding { name: "x".into(), tile: TileId::new(0), addr: 0, width: 16, count: 1 });
//! image.outputs.push(IoBinding { name: "y".into(), tile: TileId::new(0), addr: 16, width: 16, count: 1 });
//!
//! let mut sim = NodeSim::new(cfg, &image, SimMode::Functional, &NoiseModel::noiseless())?;
//! sim.write_input("x", &[0.25; 16])?;
//! sim.run()?;
//! assert_eq!(sim.read_output("y")?, vec![0.25; 16]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod compiled;
mod equeue;
pub mod fifo;
pub mod lut;
pub mod machine;
pub mod memory;
pub mod pipeline;
pub mod regfile;
pub mod stats;

pub use cluster::ClusterSim;
pub use compiled::CompiledImage;
pub use machine::{NodeSim, OutboundPacket, ResidentModel, SimEngine, SimMode};
pub use pipeline::{PipelineReport, PipelineRequest, PipelineResult, PipelineSim, StageStats};
pub use stats::{EnergyComponent, EnergyStats, RunStats};
