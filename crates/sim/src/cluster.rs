//! ClusterSim: N [`NodeSim`]s joined by a chip-to-chip interconnect
//! (§3.1's node scale-out — models whose weight footprint exceeds one
//! node's crossbars are sharded across nodes).
//!
//! The cluster runs a conservative co-simulation: all nodes share one
//! global clock, and the scheduler always advances whatever is earliest —
//! an in-flight inter-node packet or the node with the smallest pending
//! event. Nodes only interact through packets whose transfer time is at
//! least one cycle ([`InterconnectConfig::transfer_cycles`]), so executing
//! the globally earliest work first is exact: nothing a later node does
//! can reach back before it.
//!
//! The run-ahead engine keeps working inside a cluster. Before stepping a
//! node the scheduler hands it an *external horizon* — the earliest global
//! cycle at which any inter-node packet could still arrive (in-flight
//! arrivals, plus every other node's next event time + link latency). The
//! node may execute synchronization instructions off-queue only strictly
//! below that horizon; at or past it, it re-enters its event queue so the
//! delivery interleaves correctly.

use crate::compiled::CompiledImage;
use crate::fifo::Packet;
use crate::machine::{NodeSim, OutboundPacket, ResidentModel, SimEngine, SimMode};
use crate::stats::RunStats;
use puma_core::config::NodeConfig;
use puma_core::error::{PumaError, Result};
use puma_core::fixed::Fixed;
use puma_core::timing::InterconnectConfig;
use puma_isa::MachineImage;
use puma_xbar::NoiseModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An inter-node packet in flight on the interconnect.
#[derive(Debug)]
struct Flight {
    arrive_at: u64,
    /// Global send order; ties in arrival time resolve in send order so
    /// the co-simulation is deterministic.
    seq: u64,
    dest_node: u16,
    dest_tile: u16,
    fifo: u8,
    packet: Packet,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        (self.arrive_at, self.seq) == (other.arrive_at, other.seq)
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrive_at, self.seq).cmp(&(other.arrive_at, other.seq))
    }
}

/// A cluster of node simulators executing one sharded model.
///
/// Per-name host I/O works exactly as on [`NodeSim`]: every binding name
/// is unique across the cluster, and [`ClusterSim::write_input`] /
/// [`ClusterSim::read_output`] route to the node that owns it.
///
/// # Examples
///
/// See `puma_compiler::shard` for producing per-node images and the
/// `puma-testkit` sharded differential suite for end-to-end usage.
#[derive(Debug)]
pub struct ClusterSim {
    nodes: Vec<NodeSim>,
    interconnect: InterconnectConfig,
    in_flight: BinaryHeap<Reverse<Flight>>,
    flight_seq: u64,
    stats: RunStats,
}

impl ClusterSim {
    /// Builds one simulator per image, all sharing `cfg`, joined by the
    /// default interconnect.
    ///
    /// # Errors
    ///
    /// Propagates per-node construction failures; rejects an empty image
    /// list and clusters larger than the 256-node `send` addressing range.
    pub fn new(
        cfg: NodeConfig,
        images: &[MachineImage],
        mode: SimMode,
        noise: &NoiseModel,
    ) -> Result<Self> {
        Self::with_interconnect(cfg, images, mode, noise, InterconnectConfig::default())
    }

    /// [`ClusterSim::new`] with an explicit interconnect model.
    ///
    /// # Errors
    ///
    /// See [`ClusterSim::new`].
    pub fn with_interconnect(
        cfg: NodeConfig,
        images: &[MachineImage],
        mode: SimMode,
        noise: &NoiseModel,
        interconnect: InterconnectConfig,
    ) -> Result<Self> {
        if images.is_empty() {
            return Err(PumaError::InvalidConfig {
                what: "a cluster needs at least one node image".to_string(),
            });
        }
        if images.len() > u8::MAX as usize + 1 {
            return Err(PumaError::InvalidConfig {
                what: format!("{} nodes exceed the 256-node send addressing range", images.len()),
            });
        }
        let mut nodes = Vec::with_capacity(images.len());
        for (i, image) in images.iter().enumerate() {
            let mut sim = NodeSim::new(cfg, image, mode, noise)?;
            sim.join_cluster(i as u16, images.len() as u16, interconnect);
            nodes.push(sim);
        }
        Ok(ClusterSim {
            nodes,
            interconnect,
            in_flight: BinaryHeap::new(),
            flight_seq: 0,
            stats: RunStats::new(),
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The per-node simulators (e.g. for per-node statistics).
    pub fn nodes(&self) -> &[NodeSim] {
        &self.nodes
    }

    /// Selects the execution engine on every node.
    pub fn set_engine(&mut self, engine: SimEngine) {
        for node in &mut self.nodes {
            node.set_engine(engine);
        }
    }

    /// The per-node pre-decoded images backing [`SimEngine::Compiled`],
    /// in node order — `Some` only once every node holds one (i.e. after
    /// `set_engine(Compiled)` or adoption). The images are read-only, so
    /// worker replicas simulating the same sharded model share them
    /// instead of recompiling per replica.
    pub fn compiled_images(&self) -> Option<Vec<Arc<CompiledImage>>> {
        self.nodes.iter().map(NodeSim::compiled_image).collect()
    }

    /// Adopts pre-decoded images compiled by a replica of the same
    /// sharded model, one per node in node order (see
    /// [`NodeSim::adopt_compiled_image`]).
    pub fn adopt_compiled_images(&mut self, images: &[Arc<CompiledImage>]) {
        debug_assert_eq!(images.len(), self.nodes.len(), "one compiled image per node");
        for (node, image) in self.nodes.iter_mut().zip(images) {
            node.adopt_compiled_image(Arc::clone(image));
        }
    }

    /// Clones the cluster into a fresh worker replica: every node is
    /// [`NodeSim::fork_replica`]-forked (programs, programmed
    /// crossbars, and compiled images `Arc`-shared; state arenas
    /// fresh), with empty in-flight interconnect traffic.
    #[must_use]
    pub fn fork_replica(&self) -> ClusterSim {
        ClusterSim {
            nodes: self.nodes.iter().map(NodeSim::fork_replica).collect(),
            interconnect: self.interconnect,
            in_flight: BinaryHeap::new(),
            flight_seq: 0,
            stats: RunStats::new(),
        }
    }

    /// Approximate bytes of per-replica mutable state, summed over
    /// nodes (see [`NodeSim::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.nodes.iter().map(NodeSim::state_bytes).sum()
    }

    /// Event-queue pops since the last reset, summed over nodes (see
    /// [`NodeSim::queue_events`]).
    pub fn queue_events(&self) -> u64 {
        self.nodes.iter().map(NodeSim::queue_events).sum()
    }

    /// Overrides the runaway-simulation safety cap on every node.
    pub fn set_max_cycles(&mut self, max_cycles: u64) {
        for node in &mut self.nodes {
            node.set_max_cycles(max_cycles);
        }
    }

    /// Aggregate statistics of the last [`ClusterSim::run`]: counters and
    /// energy summed over nodes, `cycles` the global completion time.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets every node and drops in-flight packets so the cluster can
    /// run again (crossbar weights persist, as on [`NodeSim::reset`]).
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.reset();
        }
        self.in_flight.clear();
        self.flight_seq = 0;
        self.stats = RunStats::new();
    }

    fn node_owning_input(&mut self, name: &str) -> Option<&mut NodeSim> {
        self.nodes.iter_mut().find(|n| n.input_names().contains(&name))
    }

    /// Writes a named input vector on whichever node owns the binding.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] if no node binds the name; wrong
    /// widths propagate from [`NodeSim::write_input`].
    pub fn write_input(&mut self, name: &str, values: &[f32]) -> Result<()> {
        self.node_owning_input(name)
            .ok_or_else(|| PumaError::Execution { what: format!("no node binds input {name:?}") })?
            .write_input(name, values)
    }

    /// Fixed-point variant of [`ClusterSim::write_input`].
    ///
    /// # Errors
    ///
    /// See [`ClusterSim::write_input`].
    pub fn write_input_fixed(&mut self, name: &str, values: &[Fixed]) -> Result<()> {
        self.node_owning_input(name)
            .ok_or_else(|| PumaError::Execution { what: format!("no node binds input {name:?}") })?
            .write_input_fixed(name, values)
    }

    /// Reads a named output vector from whichever node owns the binding.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] if no node binds the name.
    pub fn read_output(&self, name: &str) -> Result<Vec<f32>> {
        Ok(self.read_output_fixed(name)?.into_iter().map(Fixed::to_f32).collect())
    }

    /// Fixed-point variant of [`ClusterSim::read_output`].
    ///
    /// # Errors
    ///
    /// See [`ClusterSim::read_output`].
    pub fn read_output_fixed(&self, name: &str) -> Result<Vec<Fixed>> {
        self.nodes
            .iter()
            .find(|n| n.output_names().contains(&name))
            .ok_or_else(|| PumaError::Execution { what: format!("no node binds output {name:?}") })?
            .read_output_fixed(name)
    }

    /// All input binding names across the cluster.
    pub fn input_names(&self) -> Vec<&str> {
        self.nodes.iter().flat_map(|n| n.input_names()).collect()
    }

    /// All output binding names across the cluster.
    pub fn output_names(&self) -> Vec<&str> {
        self.nodes.iter().flat_map(|n| n.output_names()).collect()
    }

    /// Runs the cluster to global completion.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Deadlock`] if the cluster quiesces with blocked
    /// agents (e.g. a receive whose matching inter-node send never
    /// executes), and propagates per-node execution faults.
    pub fn run(&mut self) -> Result<&RunStats> {
        let outcome = self.run_loop();
        for node in &mut self.nodes {
            node.finalize_stats();
        }
        self.collect_stats();
        outcome?;
        Ok(&self.stats)
    }

    /// Registers the resident models of one node's fabric image (see
    /// [`NodeSim::set_residents`]); resident names must be unique across
    /// the whole cluster so [`ClusterSim::run_resident`] can route by
    /// name.
    ///
    /// # Errors
    ///
    /// Propagates [`NodeSim::set_residents`] validation and rejects a
    /// name already resident on another node.
    pub fn set_residents(&mut self, node: usize, residents: Vec<ResidentModel>) -> Result<()> {
        for r in &residents {
            if let Some(other) = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != node)
                .find(|(_, n)| n.residents().iter().any(|p| p.name == r.name))
            {
                return Err(PumaError::InvalidConfig {
                    what: format!("resident '{}' already lives on node {}", r.name, other.0),
                });
            }
        }
        self.nodes[node].set_residents(residents)
    }

    /// Runs one resident model to completion on the node that hosts it,
    /// leaving every other tenant (and node) untouched — the cluster
    /// counterpart of [`NodeSim::run_resident`]: the returned
    /// [`RunStats`] are exactly that model's.
    ///
    /// # Errors
    ///
    /// Like [`ClusterSim::run`], plus [`PumaError::InvalidConfig`] for an
    /// unknown resident name.
    pub fn run_resident(&mut self, name: &str) -> Result<&RunStats> {
        let owner = self
            .nodes
            .iter()
            .position(|n| n.residents().iter().any(|r| r.name == name))
            .ok_or_else(|| PumaError::InvalidConfig {
                what: format!("no resident model named '{name}' on any node"),
            })?;
        let mut outcome = Ok(());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if i == owner {
                outcome = node.prime_resident(name);
                if outcome.is_err() {
                    break;
                }
            } else {
                node.prime_idle();
            }
        }
        if outcome.is_ok() {
            outcome = self.run_primed();
        }
        for node in &mut self.nodes {
            node.finalize_stats();
        }
        self.collect_stats();
        outcome?;
        Ok(&self.stats)
    }

    fn run_loop(&mut self) -> Result<()> {
        for node in &mut self.nodes {
            node.prime()?;
        }
        self.run_primed()
    }

    /// The post-prime body of [`ClusterSim::run`]: conservative co-sim
    /// to global quiescence, deadlock diagnosis, cycle sealing.
    fn run_primed(&mut self) -> Result<()> {
        loop {
            let next_arrival = self.in_flight.peek().map(|Reverse(f)| f.arrive_at);
            let next_node: Option<(u64, usize)> = self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| n.next_event_time().map(|t| (t, i)))
                .min();
            match (next_arrival, next_node) {
                (None, None) => break,
                (Some(arrival), node) if node.is_none_or(|(t, _)| arrival <= t) => {
                    // Deliveries win ties: within a node, packet delivery
                    // events outrank agent events at the same timestamp.
                    let Reverse(flight) = self.in_flight.pop().expect("peeked above");
                    self.nodes[flight.dest_node as usize].deliver_external(
                        flight.dest_tile,
                        flight.fifo,
                        flight.packet,
                        flight.arrive_at,
                    )?;
                }
                (_, Some((_, i))) => {
                    // Conservative lookahead for run-ahead execution: no
                    // packet can arrive before any current in-flight
                    // arrival, nor before another node's next event plus
                    // the link latency (transfer time is at least
                    // latency + 1 serialization cycle).
                    let future_send = self
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .filter_map(|(_, n)| n.next_event_time())
                        .min()
                        .map(|t| t.saturating_add(self.interconnect.latency_cycles.max(1)));
                    let horizon =
                        [next_arrival, future_send].into_iter().flatten().min().unwrap_or(u64::MAX);
                    self.nodes[i].set_external_horizon(horizon);
                    self.nodes[i].step_one()?;
                    for out in self.nodes[i].take_outbox() {
                        let OutboundPacket { node, tile, fifo, packet, arrive_at } = out;
                        self.flight_seq += 1;
                        self.in_flight.push(Reverse(Flight {
                            arrive_at,
                            seq: self.flight_seq,
                            dest_node: node,
                            dest_tile: tile,
                            fifo,
                            packet,
                        }));
                    }
                }
                (Some(_), None) => unreachable!("covered by the delivery arm's guard"),
            }
        }
        // Global quiescence: every queue is empty and nothing is in
        // flight. Any blocked agent now can never be woken.
        let blocked: Vec<String> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| n.blocked_summary().into_iter().map(move |s| format!("node{i}/{s}")))
            .collect();
        let completion = self.nodes.iter().map(|n| n.last_time()).max().unwrap_or(0);
        if !blocked.is_empty() {
            let what = format!(
                "cluster quiescent with {} agents blocked: {}",
                blocked.len(),
                blocked.join(", ")
            );
            // An injected tile death that fired anywhere in the cluster
            // converts the stall into a typed fault naming the dead tile.
            for (i, node) in self.nodes.iter().enumerate() {
                if let Some((tile, at)) = node.fired_tile_death() {
                    return Err(PumaError::FaultedTile {
                        node: i,
                        tile: tile as usize,
                        cycle: at,
                        what,
                    });
                }
            }
            return Err(PumaError::Deadlock { cycle: completion, what });
        }
        for node in &mut self.nodes {
            node.seal_cycles();
        }
        Ok(())
    }

    /// Merges per-node statistics: counters and energy sum in node order
    /// (deterministic floating-point totals); `cycles` is the global
    /// completion time (nodes ran concurrently, not back-to-back).
    fn collect_stats(&mut self) {
        let mut stats = RunStats::new();
        for node in &self.nodes {
            stats.merge(node.stats());
        }
        stats.cycles = self.nodes.iter().map(|n| n.last_time()).max().unwrap_or(0);
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puma_core::config::{CoreConfig, MvmuConfig, NodeConfig, TileConfig};
    use puma_core::ids::{CoreId, TileId};
    use puma_isa::asm::assemble;
    use puma_isa::{IoBinding, Program};

    /// A small two-core, two-tile-capable configuration.
    fn tiny_config() -> NodeConfig {
        let mvmu = MvmuConfig { dim: 16, ..MvmuConfig::default() };
        NodeConfig {
            tile: TileConfig {
                core: CoreConfig {
                    mvmu,
                    mvmus_per_core: 2,
                    vfu_lanes: 4,
                    instruction_memory_bytes: 4096,
                    register_file_words: 256,
                },
                cores_per_tile: 2,
                shared_memory_bytes: 4096,
                ..TileConfig::default()
            },
            tiles_per_node: 4,
            ..NodeConfig::default()
        }
    }

    fn asm_program(source: &str) -> Program {
        Program::from_instructions(assemble(source).unwrap())
    }

    /// Node 0 stores a value and sends it to node 1; node 1 receives and
    /// exposes it as an output.
    fn two_node_images() -> Vec<MachineImage> {
        let mut n0 = MachineImage::new(1, 2, 2);
        n0.core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("set r0 9\nstore @0 r0 1 4\nhalt\n");
        n0.tiles[0].program = asm_program("send @0 f3 t0 4 n1\nhalt\n");
        let mut n1 = MachineImage::new(1, 2, 2);
        n1.tiles[0].program = asm_program("recv @8 f3 1 4\nhalt\n");
        n1.core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("load r0 @8 4\nstore @32 r0 1 4\nhalt\n");
        n1.outputs.push(IoBinding {
            name: "out".into(),
            tile: TileId::new(0),
            addr: 32,
            width: 4,
            count: 1,
        });
        vec![n0, n1]
    }

    #[test]
    fn internode_send_delivers_and_is_charged() {
        for engine in [SimEngine::Reference, SimEngine::RunAhead, SimEngine::Compiled] {
            let mut cluster = ClusterSim::new(
                tiny_config(),
                &two_node_images(),
                SimMode::Functional,
                &NoiseModel::noiseless(),
            )
            .unwrap();
            cluster.set_engine(engine);
            cluster.run().unwrap();
            assert_eq!(cluster.read_output_fixed("out").unwrap()[0].to_bits(), 9);
            let stats = cluster.stats();
            assert_eq!(stats.internode_words, 4, "{engine:?}");
            assert!(
                stats.energy.component_nj(crate::stats::EnergyComponent::Interconnect) > 0.0,
                "{engine:?}"
            );
            assert!(
                stats.energy.component_busy(crate::stats::EnergyComponent::Interconnect) > 0,
                "{engine:?}"
            );
            // The link latency shows up in the completion time.
            assert!(stats.cycles > InterconnectConfig::default().latency_cycles, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree_across_nodes() {
        let run = |engine: SimEngine| {
            let mut cluster = ClusterSim::new(
                tiny_config(),
                &two_node_images(),
                SimMode::Functional,
                &NoiseModel::noiseless(),
            )
            .unwrap();
            cluster.set_engine(engine);
            cluster.run().unwrap();
            cluster.stats().clone()
        };
        let reference = run(SimEngine::Reference);
        assert_eq!(reference, run(SimEngine::RunAhead));
        assert_eq!(reference, run(SimEngine::Compiled));
    }

    #[test]
    fn adopted_compiled_images_replay_identically() {
        // A second replica of the same sharded model adopts the first
        // replica's compiled images instead of recompiling, and the runs
        // stay bit-identical.
        let build = || {
            ClusterSim::new(
                tiny_config(),
                &two_node_images(),
                SimMode::Functional,
                &NoiseModel::noiseless(),
            )
            .unwrap()
        };
        let mut first = build();
        first.set_engine(SimEngine::Compiled);
        let images = first.compiled_images().expect("set_engine compiled every node");
        first.run().unwrap();

        let mut second = build();
        second.adopt_compiled_images(&images);
        second.set_engine(SimEngine::Compiled);
        let adopted = second.compiled_images().expect("adopted images are retained");
        for (a, b) in images.iter().zip(&adopted) {
            assert!(Arc::ptr_eq(a, b), "adoption must reuse the images, not recompile");
        }
        second.run().unwrap();
        assert_eq!(first.stats(), second.stats());
    }

    #[test]
    fn node_to_self_send_uses_the_noc() {
        // A `send ... n0` executed by node 0 of a cluster is an ordinary
        // intra-node NoC transfer between its own tiles.
        let mut n0 = MachineImage::new(2, 2, 2);
        n0.core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("set r0 5\nstore @0 r0 1 2\nhalt\n");
        n0.tiles[0].program = asm_program("send @0 f1 t1 2 n0\nhalt\n");
        n0.tiles[1].program = asm_program("recv @4 f1 1 2\nhalt\n");
        n0.core_mut(TileId::new(1), CoreId::new(0)).program =
            asm_program("load r0 @4 2\nstore @16 r0 1 2\nhalt\n");
        n0.outputs.push(IoBinding {
            name: "y".into(),
            tile: TileId::new(1),
            addr: 16,
            width: 2,
            count: 1,
        });
        let idle = MachineImage::new(1, 2, 2);
        let mut cluster = ClusterSim::new(
            tiny_config(),
            &[n0, idle],
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .unwrap();
        cluster.run().unwrap();
        assert_eq!(cluster.read_output_fixed("y").unwrap()[0].to_bits(), 5);
        let stats = cluster.stats();
        assert_eq!(stats.network_words, 2, "self-send goes over the NoC");
        assert_eq!(stats.internode_words, 0, "no interconnect traffic");
    }

    #[test]
    fn recv_without_sender_is_cluster_deadlock() {
        // Node 1 waits on a FIFO nobody ever sends to: the cluster
        // quiesces and reports a deterministic deadlock naming the agent.
        let mut n1 = MachineImage::new(1, 2, 2);
        n1.tiles[0].program = asm_program("recv @8 f3 1 4\nhalt\n");
        let images = vec![MachineImage::new(1, 2, 2), n1];
        for engine in [SimEngine::Reference, SimEngine::RunAhead, SimEngine::Compiled] {
            let mut cluster = ClusterSim::new(
                tiny_config(),
                &images,
                SimMode::Functional,
                &NoiseModel::noiseless(),
            )
            .unwrap();
            cluster.set_engine(engine);
            match cluster.run() {
                Err(PumaError::Deadlock { what, .. }) => {
                    // The diagnostic must pinpoint the stall: which node,
                    // which tile, which agent, and which FIFO it is
                    // parked on — that is what makes a serving timeout
                    // against a sharded model debuggable.
                    assert!(what.contains("node1/tile0/ctl"), "{engine:?}: {what}");
                    assert!(what.contains("fifo f3"), "{engine:?}: {what}");
                    assert!(what.contains("1 agents blocked"), "{engine:?}: {what}");
                }
                other => panic!("{engine:?}: expected cluster deadlock, got {other:?}"),
            }
        }
    }

    #[test]
    fn internode_width_mismatch_faults_in_functional_mode() {
        // Node 0 sends 4 words; node 1's receive expects 2. Functional
        // mode must reject the misrouted payload like the intra-node case.
        let mut images = two_node_images();
        images[1].tiles[0].program = asm_program("recv @8 f3 1 2\nhalt\n");
        images[1].core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("load r0 @8 2\nstore @32 r0 1 2\nhalt\n");
        let mut cluster =
            ClusterSim::new(tiny_config(), &images, SimMode::Functional, &NoiseModel::noiseless())
                .unwrap();
        match cluster.run() {
            Err(PumaError::Execution { what }) => {
                assert!(what.contains("mismatches packet"), "{what}");
            }
            other => panic!("expected width-mismatch fault, got {other:?}"),
        }
    }

    #[test]
    fn send_to_missing_node_faults() {
        let mut n0 = MachineImage::new(1, 2, 2);
        n0.core_mut(TileId::new(0), CoreId::new(0)).program =
            asm_program("set r0 1\nstore @0 r0 1 1\nhalt\n");
        n0.tiles[0].program = asm_program("send @0 f0 t0 1 n7\nhalt\n");
        let mut cluster = ClusterSim::new(
            tiny_config(),
            &[n0, MachineImage::new(1, 2, 2)],
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .unwrap();
        match cluster.run() {
            Err(PumaError::Execution { what }) => {
                assert!(what.contains("nonexistent node"), "{what}");
            }
            other => panic!("expected missing-node fault, got {other:?}"),
        }
    }

    #[test]
    fn send_to_missing_tile_of_other_node_faults() {
        let mut images = two_node_images();
        images[0].tiles[0].program = asm_program("send @0 f3 t3 4 n1\nhalt\n");
        let mut cluster =
            ClusterSim::new(tiny_config(), &images, SimMode::Functional, &NoiseModel::noiseless())
                .unwrap();
        match cluster.run() {
            Err(PumaError::Execution { what }) => {
                assert!(what.contains("nonexistent tile"), "{what}");
            }
            other => panic!("expected missing-tile fault, got {other:?}"),
        }
    }

    #[test]
    fn reset_allows_second_cluster_run() {
        let mut cluster = ClusterSim::new(
            tiny_config(),
            &two_node_images(),
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .unwrap();
        cluster.run().unwrap();
        let first = cluster.stats().clone();
        cluster.reset();
        cluster.run().unwrap();
        assert_eq!(&first, cluster.stats(), "cluster runs must replay identically");
    }

    #[test]
    fn empty_cluster_rejected() {
        assert!(ClusterSim::new(tiny_config(), &[], SimMode::Functional, &NoiseModel::noiseless())
            .is_err());
    }
}
