//! ROM-embedded RAM transcendental function evaluation (§3.4.1, Fig. 3).
//!
//! PUMA evaluates transcendental functions (sigmoid, tanh, log, exp) through
//! look-up tables embedded in the register file's ROM-Embedded RAM — a
//! second wordline per row lets the same array serve as both RAM and ROM
//! without extra area. We model the *functional* behaviour: a 512-entry
//! table over the Q4.12 domain with linear interpolation between entries
//! (the interpolation multiply-add runs on the VFU lane that issued the
//! lookup).

use puma_core::fixed::Fixed;
use puma_isa::AluOp;

/// Number of table entries per function.
pub const LUT_ENTRIES: usize = 512;

/// A set of transcendental lookup tables in Q4.12.
#[derive(Debug, Clone)]
pub struct RomLut {
    sigmoid: Vec<Fixed>,
    tanh: Vec<Fixed>,
    log: Vec<Fixed>,
    exp: Vec<Fixed>,
}

/// Full Q4.12 domain span (from -8.0 inclusive to +8.0 exclusive).
const DOMAIN: f32 = 16.0;
const DOMAIN_MIN: f32 = -8.0;

fn build_table(f: impl Fn(f32) -> f32) -> Vec<Fixed> {
    (0..LUT_ENTRIES)
        .map(|i| {
            let x = DOMAIN_MIN + DOMAIN * i as f32 / LUT_ENTRIES as f32;
            Fixed::from_f32(f(x))
        })
        .collect()
}

impl RomLut {
    /// Builds the four tables.
    pub fn new() -> Self {
        RomLut {
            sigmoid: build_table(|x| 1.0 / (1.0 + (-x).exp())),
            tanh: build_table(|x| x.tanh()),
            // ln is undefined for x <= 0; the table saturates low (the
            // hardware stores the most negative representable value).
            log: build_table(|x| if x > 0.0 { x.ln() } else { -8.0 }),
            exp: build_table(|x| x.exp()),
        }
    }

    fn table(&self, op: AluOp) -> Option<&[Fixed]> {
        match op {
            AluOp::Sigmoid => Some(&self.sigmoid),
            AluOp::Tanh => Some(&self.tanh),
            AluOp::Log => Some(&self.log),
            AluOp::Exp => Some(&self.exp),
            _ => None,
        }
    }

    /// Evaluates a transcendental function with table lookup plus linear
    /// interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a transcendental operation (the caller — the
    /// VFU execution path — dispatches only transcendental ops here).
    pub fn eval(&self, op: AluOp, x: Fixed) -> Fixed {
        let table = self.table(op).expect("RomLut::eval requires a transcendental op");
        // Map Q4.12 bits [-32768, 32767] onto [0, LUT_ENTRIES).
        let unsigned = (x.to_bits() as i32 + 32768) as u32; // 0..65536
        let step = 65536 / LUT_ENTRIES as u32; // 128
        let idx = (unsigned / step) as usize;
        let frac = (unsigned % step) as i32; // 0..step
        let lo = table[idx.min(LUT_ENTRIES - 1)];
        let hi = table[(idx + 1).min(LUT_ENTRIES - 1)];
        // Linear interpolation in raw bit space.
        let lo_b = lo.to_bits() as i32;
        let hi_b = hi.to_bits() as i32;
        let interp = lo_b + ((hi_b - lo_b) * frac) / step as i32;
        Fixed::from_bits(puma_core::fixed::clamp_i32(interp))
    }
}

impl Default for RomLut {
    fn default() -> Self {
        RomLut::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(op: AluOp, f: impl Fn(f32) -> f32, lo: f32, hi: f32) -> f32 {
        let lut = RomLut::new();
        let mut worst = 0.0f32;
        let mut x = lo;
        while x < hi {
            let got = lut.eval(op, Fixed::from_f32(x)).to_f32();
            let want = f(x);
            worst = worst.max((got - want).abs());
            x += 0.01;
        }
        worst
    }

    #[test]
    fn sigmoid_is_accurate() {
        assert!(max_err(AluOp::Sigmoid, |x| 1.0 / (1.0 + (-x).exp()), -7.9, 7.9) < 0.01);
    }

    #[test]
    fn tanh_is_accurate() {
        assert!(max_err(AluOp::Tanh, f32::tanh, -7.9, 7.9) < 0.01);
    }

    #[test]
    fn exp_is_accurate_in_safe_range() {
        // exp saturates above ln(8); test below that.
        assert!(max_err(AluOp::Exp, f32::exp, -7.9, 1.9) < 0.02);
    }

    #[test]
    fn log_is_accurate_for_positive_inputs() {
        assert!(max_err(AluOp::Log, f32::ln, 0.5, 7.9) < 0.02);
    }

    #[test]
    fn log_saturates_for_non_positive() {
        let lut = RomLut::new();
        assert!(lut.eval(AluOp::Log, Fixed::from_f32(-1.0)).to_f32() < -7.0);
    }

    #[test]
    fn sigmoid_limits_are_correct() {
        let lut = RomLut::new();
        assert!(lut.eval(AluOp::Sigmoid, Fixed::from_f32(7.9)).to_f32() > 0.99);
        assert!(lut.eval(AluOp::Sigmoid, Fixed::from_f32(-7.9)).to_f32() < 0.01);
        let mid = lut.eval(AluOp::Sigmoid, Fixed::ZERO).to_f32();
        assert!((mid - 0.5).abs() < 0.01);
    }

    #[test]
    fn tanh_is_odd_at_origin() {
        let lut = RomLut::new();
        assert!(lut.eval(AluOp::Tanh, Fixed::ZERO).to_f32().abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "transcendental")]
    fn non_transcendental_op_panics() {
        RomLut::new().eval(AluOp::Add, Fixed::ZERO);
    }
}
