//! The simulator's event queue: a two-level **bucketed queue** behind the
//! same ordering contract as the original `BinaryHeap<Reverse<Event>>`.
//!
//! Discrete-event traffic in PUMAsim is strongly time-local: pop times
//! are non-decreasing, and most pushes land within a few cycles of the
//! frontier — wake-ups at the current cycle, agent re-entries one
//! instruction latency ahead. A binary heap pays `O(log n)` sift work on
//! ~56-byte events for every one of them. Here the head of the queue
//! lives in a small sorted **frontier bucket**: the common push is a
//! short ordered insert near its tail, and the common pop takes its head
//! for free. Only events beyond the frontier bucket (MVM completions,
//! NoC and interconnect deliveries, spill under bursts) reach the
//! backing heap, cutting heap churn to the rare far-future traffic.
//!
//! (A classic many-bucket calendar ring was measured here too and lost:
//! with PUMAsim's event density — hundreds of live events packed within
//! a few dozen cycles of the frontier — per-pop bucket scans over
//! scattered bucket storage cost more than the heap's cache-resident
//! sift, while the frontier bucket captures exactly the traffic that
//! matters. The bucket boundary is adaptive by construction: it is the
//! 64 earliest keys, not a fixed time window.)
//!
//! Ordering is **identical** to the heap it replaces: events pop by
//! `(time, priority, seq)`. The queue is exact for arbitrary push
//! patterns — the monotone pattern is only what makes it fast.

use crate::fifo::Packet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Event priority classes: deliveries outrank wakes, wakes outrank
/// scheduled agent events, and scheduled agents order by id. Within a
/// class, ties resolve by push sequence — which is what gives woken
/// agents their FIFO park-order guarantee (see `apply_wakes`).
pub(crate) const PRIO_DELIVER: u64 = 0;
/// Priority of agent wake-ups issued by `apply_wakes`: all wakes share
/// one class, so same-cycle wakes pop in seq (= park) order.
pub(crate) const PRIO_WAKE: u64 = 1;

/// Priority of a scheduled (non-wake) agent event: after deliveries and
/// wakes, agents order by id for deterministic same-cycle interleaving.
pub(crate) fn agent_priority(tile: u32, core: u32) -> u64 {
    2 + (tile as u64) * 64 + (core as u64).min(63)
}

/// A packet delivery event's payload, boxed so the common agent events
/// keep [`Event`] at 32 bytes (every ordered insert moves events around).
#[derive(Debug)]
pub(crate) struct DeliverEvent {
    pub tile: u32,
    pub fifo: u8,
    pub packet: Packet,
}

#[derive(Debug)]
pub(crate) enum EventKind {
    AgentReady(crate::machine::AgentId),
    Deliver(Box<DeliverEvent>),
}

/// Bit position of the priority class within [`Event::prio_seq`]: the low
/// 40 bits hold the push sequence (2^40 events per run is far beyond the
/// cycle cap), the high 24 the priority (tile counts cap well under
/// 2^18).
pub(crate) const PRIO_SHIFT: u64 = 40;

#[derive(Debug)]
pub(crate) struct Event {
    pub time: u64,
    /// Packed tie-break: `priority << PRIO_SHIFT | seq` — one comparison
    /// orders by class first, then push sequence, exactly like the
    /// `(priority, seq)` pair it replaces.
    pub prio_seq: u64,
    pub kind: EventKind,
}

impl Event {
    /// The tile this event targets — every event touches exactly one
    /// tile's state, which is what makes per-tile horizon tracking exact.
    pub(crate) fn tile(&self) -> u32 {
        match &self.kind {
            EventKind::AgentReady(agent) => agent.tile,
            EventKind::Deliver(d) => d.tile,
        }
    }

    fn key(&self) -> (u64, u64) {
        (self.time, self.prio_seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Capacity of the sorted frontier bucket: big enough to absorb the
/// same-cycle wake bursts and short-latency re-entries that dominate the
/// traffic, small enough that an ordered insert is a one-cache-line-ish
/// memmove.
const FRONT_CAP: usize = 64;

/// The two-level bucketed event queue (see the module docs).
///
/// # Invariant
///
/// `front` is sorted ascending by `(time, priority, seq)` and holds at
/// most [`FRONT_CAP`] events. The backing heap may hold keys that
/// interleave with the front (an event spilled while the front was
/// fuller), so [`BucketQueue::pop`] arbitrates on the full key — which
/// the heap exposes O(1) via `peek`.
#[derive(Debug)]
pub(crate) struct BucketQueue {
    front: std::collections::VecDeque<Event>,
    far: BinaryHeap<Reverse<Event>>,
}

impl BucketQueue {
    pub fn new() -> Self {
        BucketQueue {
            front: std::collections::VecDeque::with_capacity(FRONT_CAP + 1),
            far: BinaryHeap::new(),
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.front.len() + self.far.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.far.is_empty()
    }

    /// Exact earliest event time, `None` when empty. O(1).
    pub fn min_time(&self) -> Option<u64> {
        match (self.front.front(), self.far.peek()) {
            (Some(f), Some(Reverse(h))) => Some(f.time.min(h.time)),
            (Some(f), None) => Some(f.time),
            (None, Some(Reverse(h))) => Some(h.time),
            (None, None) => None,
        }
    }

    pub fn clear(&mut self) {
        self.front.clear();
        self.far.clear();
    }

    /// All queued events, in no particular order (used to rebuild the
    /// per-tile horizon index on an engine switch).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.front.iter().chain(self.far.iter().map(|Reverse(e)| e))
    }

    pub fn push(&mut self, ev: Event) {
        // Into the frontier bucket if it has room or the event beats its
        // tail; the displaced tail spills to the heap.
        let fits =
            self.front.len() < FRONT_CAP || self.front.back().is_some_and(|b| ev.key() < b.key());
        if fits {
            let pos = self.front.partition_point(|e| e.key() < ev.key());
            self.front.insert(pos, ev);
            if self.front.len() > FRONT_CAP {
                let spill = self.front.pop_back().expect("over cap");
                self.far.push(Reverse(spill));
            }
        } else {
            self.far.push(Reverse(ev));
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        match (self.front.front(), self.far.peek()) {
            (Some(f), Some(Reverse(h))) if h.key() < f.key() => self.far.pop().map(|Reverse(e)| e),
            (Some(_), _) => self.front.pop_front(),
            (None, _) => self.far.pop().map(|Reverse(e)| e),
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AgentId;

    fn ev(time: u64, priority: u64, seq: u64) -> Event {
        Event {
            time,
            prio_seq: (priority << PRIO_SHIFT) | seq,
            kind: EventKind::AgentReady(AgentId { tile: 0, core: 0 }),
        }
    }

    fn packed(time: u64, priority: u64, seq: u64) -> (u64, u64) {
        (time, (priority << PRIO_SHIFT) | seq)
    }

    /// Pops everything and returns the keys in pop order.
    fn drain_keys(q: &mut BucketQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.key());
        }
        out
    }

    #[test]
    fn pops_in_time_priority_seq_order() {
        let mut q = BucketQueue::new();
        q.push(ev(10, 1, 3));
        q.push(ev(10, 0, 4));
        q.push(ev(5, 9, 1));
        q.push(ev(10, 1, 2));
        assert_eq!(q.min_time(), Some(5));
        assert_eq!(
            drain_keys(&mut q),
            vec![packed(5, 9, 1), packed(10, 0, 4), packed(10, 1, 2), packed(10, 1, 3)]
        );
        assert!(q.is_empty());
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn spill_and_interleave_stay_exact() {
        // Overfill the frontier bucket with descending times so later,
        // smaller keys force spills, then interleave pops: the heap and
        // the front must arbitrate on the full key.
        let mut q = BucketQueue::new();
        let mut seq = 0u64;
        for t in (0..(FRONT_CAP as u64 * 3)).rev() {
            seq += 1;
            q.push(ev(t, 2, seq));
        }
        // Same-time, lower-priority events pushed late (land in front
        // while equal-time spills sit in the heap).
        for t in 0..(FRONT_CAP as u64 * 3) {
            seq += 1;
            q.push(ev(t, 1, seq));
        }
        let keys = drain_keys(&mut q);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "pop order must be fully sorted");
        assert_eq!(keys.len(), FRONT_CAP * 6);
    }

    #[test]
    fn matches_binary_heap_on_random_monotone_traffic() {
        // xorshift64 so the case is reproducible without a rand dep.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = BucketQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut pushed = 0usize;
        for step in 0..20_000 {
            let r = rng();
            let push = heap.is_empty() || (r % 5 != 0 && pushed < 15_000);
            if push {
                // Mostly near-frontier deltas, occasionally far-future
                // ones that exercise the spill path.
                let delta = if r % 97 == 0 { r % 50_000 } else { r % 2500 };
                seq += 1;
                let (prio, time) = (r % 4, now + delta);
                q.push(ev(time, prio, seq));
                heap.push(Reverse(packed(time, prio, seq)));
                pushed += 1;
            } else {
                let Reverse(want) = heap.pop().unwrap();
                let got = q.pop().unwrap().key();
                assert_eq!(got, want, "divergence at step {step}");
                now = want.0;
            }
            assert_eq!(q.len(), heap.len());
            assert_eq!(q.min_time(), heap.peek().map(|Reverse(k)| k.0));
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop().unwrap().key(), want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn non_monotone_pushes_stay_exact() {
        // The simulator never pushes below the last pop, but the queue
        // must not depend on that.
        let mut q = BucketQueue::new();
        q.push(ev(100_000, 0, 1));
        q.push(ev(50, 0, 2));
        q.push(ev(100_001, 0, 3));
        assert_eq!(q.min_time(), Some(50));
        assert_eq!(
            drain_keys(&mut q),
            vec![packed(50, 0, 2), packed(100_000, 0, 1), packed(100_001, 0, 3)]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = BucketQueue::new();
        for i in 0..(FRONT_CAP as u64 * 2) {
            q.push(ev(i, 0, i + 1));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.min_time(), None);
        q.push(ev(7, 0, 3));
        assert_eq!(q.pop().unwrap().key(), packed(7, 0, 3));
    }
}
