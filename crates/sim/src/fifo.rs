//! The tile receive buffer: N FIFOs of M entries (§4.2).
//!
//! FIFOs preserve ordering from a given sender while letting multiple
//! senders proceed concurrently on different FIFOs. The compiler
//! virtualizes FIFO ids (different senders may share a FIFO in different
//! program phases), so the buffer itself only enforces capacity and
//! ordering.
//!
//! Storage is arena-packed: [`FifoArena`] holds every tile's FIFO rings
//! in one contiguous slab of fixed-capacity packet slots (tile-major,
//! then fifo, then ring position), plus the per-(tile, fifo) pending
//! in-flight queues that used to live in a hash map on the scheduler.
//! Delivering a packet is then two flat index computations instead of a
//! hash lookup plus a per-tile heap hop. [`ReceiveBuffer`] remains as
//! the single-tile view (the unit-test surface) and is a one-tile arena.

use puma_core::error::{PumaError, Result};
use puma_core::fixed::Fixed;
use std::collections::VecDeque;

/// One in-flight message: the payload written by a `send` instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Packet {
    /// Payload words.
    pub words: Vec<Fixed>,
}

/// Ring cursor of one FIFO inside the arena slab.
#[derive(Debug, Clone, Copy, Default)]
struct Ring {
    head: u32,
    len: u32,
}

/// All tiles' receive buffers packed into one slab of packet slots,
/// together with the per-(tile, fifo) pending-delivery queues (packets
/// that arrived while the ring was full and wait for backpressure to
/// clear).
///
/// Capacity semantics, ordering, generations, and error messages are
/// identical to the historical per-tile [`ReceiveBuffer`]; only the
/// storage layout changed. Every operation takes the tile index first.
#[derive(Debug, Clone)]
pub struct FifoArena {
    /// `tiles * fifos * depth` packet slots; a popped slot is left as an
    /// empty packet whose buffer is reused by later pushes.
    slots: Vec<Packet>,
    /// `tiles * fifos` ring cursors.
    rings: Vec<Ring>,
    /// `tiles * fifos` pending in-flight queues (scheduler-side).
    pending: Vec<VecDeque<Packet>>,
    fifos: usize,
    depth: usize,
    /// Per-tile monotonic change counters.
    generations: Vec<u64>,
}

impl FifoArena {
    /// Creates `tiles` regions of `fifos` FIFOs with `depth` entries each.
    pub fn new(tiles: usize, fifos: usize, depth: usize) -> Self {
        FifoArena {
            slots: vec![Packet::default(); tiles * fifos * depth],
            rings: vec![Ring::default(); tiles * fifos],
            pending: vec![VecDeque::new(); tiles * fifos],
            fifos,
            depth,
            generations: vec![0; tiles],
        }
    }

    /// Number of FIFOs per tile.
    pub fn fifo_count(&self) -> usize {
        self.fifos
    }

    /// Approximate heap footprint in bytes: the slab, cursors, queued
    /// payload words, and pending queues (per-replica mutable state).
    pub fn state_bytes(&self) -> usize {
        let payload: usize = self
            .slots
            .iter()
            .map(|p| p.words.capacity() * std::mem::size_of::<Fixed>())
            .sum::<usize>()
            + self
                .pending
                .iter()
                .flat_map(|q| q.iter())
                .map(|p| p.words.capacity() * std::mem::size_of::<Fixed>())
                .sum::<usize>();
        self.slots.len() * std::mem::size_of::<Packet>()
            + self.rings.len() * std::mem::size_of::<Ring>()
            + self.pending.len() * std::mem::size_of::<VecDeque<Packet>>()
            + self.generations.len() * std::mem::size_of::<u64>()
            + payload
    }

    /// Drops all queued and pending packets of one tile in place —
    /// identical observable post-state to a fresh region. Popped slot
    /// buffers are retained for reuse.
    pub fn reset_tile(&mut self, tile: usize) {
        let base = tile * self.fifos;
        for ring in &mut self.rings[base..base + self.fifos] {
            *ring = Ring::default();
        }
        for q in &mut self.pending[base..base + self.fifos] {
            q.clear();
        }
        self.generations[tile] = 0;
    }

    /// Monotonic change counter for one tile.
    pub fn generation(&self, tile: usize) -> u64 {
        self.generations[tile]
    }

    fn check_fifo(&self, fifo: u8) -> Result<usize> {
        let f = fifo as usize;
        if f >= self.fifos {
            return Err(PumaError::Execution {
                what: format!("fifo {fifo} out of range ({} fifos)", self.fifos),
            });
        }
        Ok(f)
    }

    fn slot_index(&self, tile: usize, fifo: usize, pos: u32) -> usize {
        (tile * self.fifos + fifo) * self.depth + pos as usize % self.depth
    }

    /// True if the FIFO has no free entry (network backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn is_full(&self, tile: usize, fifo: u8) -> Result<bool> {
        let f = self.check_fifo(fifo)?;
        Ok(self.rings[tile * self.fifos + f].len as usize >= self.depth)
    }

    /// Attempts to deliver a packet; hands the packet back (ring
    /// untouched) if the FIFO is full.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn try_push(&mut self, tile: usize, fifo: u8, packet: Packet) -> Result<Option<Packet>> {
        let f = self.check_fifo(fifo)?;
        let ring = self.rings[tile * self.fifos + f];
        if ring.len as usize >= self.depth {
            return Ok(Some(packet));
        }
        let idx = self.slot_index(tile, f, ring.head + ring.len);
        self.slots[idx] = packet;
        self.rings[tile * self.fifos + f].len += 1;
        self.generations[tile] += 1;
        Ok(None)
    }

    /// Pops the oldest packet, or `None` if the FIFO is empty (the receive
    /// instruction blocks).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn pop(&mut self, tile: usize, fifo: u8) -> Result<Option<Packet>> {
        let f = self.check_fifo(fifo)?;
        let ring = self.rings[tile * self.fifos + f];
        if ring.len == 0 {
            return Ok(None);
        }
        let idx = self.slot_index(tile, f, ring.head);
        let packet = std::mem::take(&mut self.slots[idx]);
        let r = &mut self.rings[tile * self.fifos + f];
        r.head = (r.head + 1) % self.depth as u32;
        r.len -= 1;
        self.generations[tile] += 1;
        Ok(Some(packet))
    }

    /// Peeks at the oldest packet without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn front(&self, tile: usize, fifo: u8) -> Result<Option<&Packet>> {
        let f = self.check_fifo(fifo)?;
        let ring = self.rings[tile * self.fifos + f];
        if ring.len == 0 {
            return Ok(None);
        }
        Ok(Some(&self.slots[self.slot_index(tile, f, ring.head)]))
    }

    /// Total queued packets across one tile's FIFO rings (pending
    /// in-flight packets not included).
    pub fn queued_packets(&self, tile: usize) -> usize {
        let base = tile * self.fifos;
        self.rings[base..base + self.fifos].iter().map(|r| r.len as usize).sum()
    }

    /// Appends an in-flight packet to the pending queue of `(tile,
    /// fifo)` — the scheduler-side staging area drained into the ring by
    /// [`FifoArena::deliver_pending`].
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id (the
    /// same fault a full-queue delivery into that FIFO would raise).
    pub fn pending_push(&mut self, tile: usize, fifo: u8, packet: Packet) -> Result<()> {
        let f = self.check_fifo(fifo)?;
        self.pending[tile * self.fifos + f].push_back(packet);
        Ok(())
    }

    /// Moves packets from the pending queue of `(tile, fifo)` into the
    /// ring, in order, while ring space lasts. Returns how many packets
    /// were delivered.
    pub fn deliver_pending(&mut self, tile: usize, fifo: u8) -> usize {
        let Ok(f) = self.check_fifo(fifo) else { return 0 };
        let base = tile * self.fifos + f;
        let mut delivered = 0;
        while self.rings[base].len < self.depth as u32 {
            let Some(packet) = self.pending[base].pop_front() else { break };
            let ring = self.rings[base];
            let idx = self.slot_index(tile, f, ring.head + ring.len);
            self.slots[idx] = packet;
            self.rings[base].len += 1;
            self.generations[tile] += 1;
            delivered += 1;
        }
        delivered
    }

    /// True if `(tile, fifo)` has in-flight packets waiting for ring
    /// space.
    pub fn has_pending(&self, tile: usize, fifo: u8) -> bool {
        self.check_fifo(fifo)
            .map(|f| !self.pending[tile * self.fifos + f].is_empty())
            .unwrap_or(false)
    }
}

/// The receive buffer of one tile: a single-tile view over a one-tile
/// [`FifoArena`] — the historical standalone type, kept as the
/// unit-test surface.
#[derive(Debug, Clone)]
pub struct ReceiveBuffer {
    arena: FifoArena,
}

impl ReceiveBuffer {
    /// Creates `fifos` FIFOs of `depth` entries each.
    pub fn new(fifos: usize, depth: usize) -> Self {
        ReceiveBuffer { arena: FifoArena::new(1, fifos, depth) }
    }

    /// Number of FIFOs.
    pub fn fifo_count(&self) -> usize {
        self.arena.fifo_count()
    }

    /// Drops all queued packets in place — identical post-state to a
    /// fresh [`ReceiveBuffer::new`] of the same shape, without
    /// re-allocating the FIFO ring storage.
    pub fn reset(&mut self) {
        self.arena.reset_tile(0);
    }

    /// Monotonic change counter.
    pub fn generation(&self) -> u64 {
        self.arena.generation(0)
    }

    /// True if the FIFO has no free entry (network backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn is_full(&self, fifo: u8) -> Result<bool> {
        self.arena.is_full(0, fifo)
    }

    /// Attempts to deliver a packet; returns false (packet dropped) if the
    /// FIFO is full.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn try_push(&mut self, fifo: u8, packet: Packet) -> Result<bool> {
        Ok(self.arena.try_push(0, fifo, packet)?.is_none())
    }

    /// Pops the oldest packet, or `None` if the FIFO is empty (the receive
    /// instruction blocks).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn pop(&mut self, fifo: u8) -> Result<Option<Packet>> {
        self.arena.pop(0, fifo)
    }

    /// Peeks at the oldest packet without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn front(&self, fifo: u8) -> Result<Option<&Packet>> {
        self.arena.front(0, fifo)
    }

    /// Total queued packets across all FIFOs.
    pub fn queued_packets(&self) -> usize {
        self.arena.queued_packets(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(tag: i16) -> Packet {
        Packet { words: vec![Fixed::from_bits(tag)] }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut rb = ReceiveBuffer::new(16, 2);
        assert!(rb.try_push(3, packet(1)).unwrap());
        assert!(rb.try_push(3, packet(2)).unwrap());
        assert_eq!(rb.pop(3).unwrap().unwrap(), packet(1));
        assert_eq!(rb.pop(3).unwrap().unwrap(), packet(2));
        assert!(rb.pop(3).unwrap().is_none());
    }

    #[test]
    fn depth_limits_occupancy() {
        let mut rb = ReceiveBuffer::new(2, 2);
        assert!(rb.try_push(0, packet(1)).unwrap());
        assert!(rb.try_push(0, packet(2)).unwrap());
        assert!(rb.is_full(0).unwrap());
        assert!(!rb.try_push(0, packet(3)).unwrap(), "third push must be refused");
        let _ = rb.pop(0).unwrap();
        assert!(rb.try_push(0, packet(3)).unwrap());
    }

    #[test]
    fn fifos_are_independent() {
        let mut rb = ReceiveBuffer::new(2, 1);
        assert!(rb.try_push(0, packet(1)).unwrap());
        assert!(rb.try_push(1, packet(2)).unwrap());
        assert_eq!(rb.pop(1).unwrap().unwrap(), packet(2));
        assert_eq!(rb.pop(0).unwrap().unwrap(), packet(1));
    }

    #[test]
    fn out_of_range_fifo_is_error() {
        let mut rb = ReceiveBuffer::new(4, 2);
        assert!(rb.try_push(4, packet(0)).is_err());
        assert!(rb.pop(200).is_err());
        assert!(rb.is_full(4).is_err());
        assert!(rb.front(4).is_err());
    }

    #[test]
    fn generation_counts_pushes_and_pops() {
        let mut rb = ReceiveBuffer::new(1, 1);
        let g0 = rb.generation();
        rb.try_push(0, packet(1)).unwrap();
        let g1 = rb.generation();
        assert!(g1 > g0);
        let _ = rb.try_push(0, packet(2)).unwrap(); // refused, no change
        assert_eq!(rb.generation(), g1);
        rb.pop(0).unwrap();
        assert!(rb.generation() > g1);
    }

    #[test]
    fn queued_packets_sums_fifos() {
        let mut rb = ReceiveBuffer::new(3, 2);
        rb.try_push(0, packet(1)).unwrap();
        rb.try_push(2, packet(2)).unwrap();
        assert_eq!(rb.queued_packets(), 2);
        assert_eq!(rb.front(0).unwrap().unwrap(), &packet(1));
    }

    #[test]
    fn ring_wraps_past_capacity_many_times() {
        let mut rb = ReceiveBuffer::new(1, 3);
        // Push/pop well past one lap of the ring; order must hold.
        let mut next_in = 0i16;
        let mut next_out = 0i16;
        for _ in 0..2 {
            while rb.try_push(0, packet(next_in)).unwrap() {
                next_in += 1;
            }
            for _ in 0..2 {
                assert_eq!(rb.pop(0).unwrap().unwrap(), packet(next_out));
                next_out += 1;
            }
        }
        while let Some(p) = rb.pop(0).unwrap() {
            assert_eq!(p, packet(next_out));
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn arena_pending_drains_in_order_under_backpressure() {
        let mut a = FifoArena::new(2, 2, 1);
        a.pending_push(1, 0, packet(7)).unwrap();
        a.pending_push(1, 0, packet(8)).unwrap();
        assert!(a.has_pending(1, 0));
        // Ring depth 1: only the first packet fits.
        assert_eq!(a.deliver_pending(1, 0), 1);
        assert_eq!(a.front(1, 0).unwrap().unwrap(), &packet(7));
        assert!(a.has_pending(1, 0));
        // Other tiles are untouched.
        assert_eq!(a.queued_packets(0), 0);
        // Popping frees the slot; the second packet drains.
        assert_eq!(a.pop(1, 0).unwrap().unwrap(), packet(7));
        assert_eq!(a.deliver_pending(1, 0), 1);
        assert_eq!(a.pop(1, 0).unwrap().unwrap(), packet(8));
        assert!(!a.has_pending(1, 0));
    }

    #[test]
    fn arena_out_of_range_pending_push_is_error() {
        let mut a = FifoArena::new(1, 4, 2);
        let err = a.pending_push(0, 9, packet(0)).unwrap_err();
        assert!(format!("{err}").contains("fifo 9 out of range (4 fifos)"), "{err}");
    }
}
