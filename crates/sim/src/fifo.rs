//! The tile receive buffer: N FIFOs of M entries (§4.2).
//!
//! FIFOs preserve ordering from a given sender while letting multiple
//! senders proceed concurrently on different FIFOs. The compiler
//! virtualizes FIFO ids (different senders may share a FIFO in different
//! program phases), so the buffer itself only enforces capacity and
//! ordering.

use puma_core::error::{PumaError, Result};
use puma_core::fixed::Fixed;
use std::collections::VecDeque;

/// One in-flight message: the payload written by a `send` instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload words.
    pub words: Vec<Fixed>,
}

/// The receive buffer of one tile.
#[derive(Debug, Clone)]
pub struct ReceiveBuffer {
    fifos: Vec<VecDeque<Packet>>,
    depth: usize,
    generation: u64,
}

impl ReceiveBuffer {
    /// Creates `fifos` FIFOs of `depth` entries each.
    pub fn new(fifos: usize, depth: usize) -> Self {
        ReceiveBuffer { fifos: (0..fifos).map(|_| VecDeque::new()).collect(), depth, generation: 0 }
    }

    /// Number of FIFOs.
    pub fn fifo_count(&self) -> usize {
        self.fifos.len()
    }

    /// Drops all queued packets in place — identical post-state to a
    /// fresh [`ReceiveBuffer::new`] of the same shape, without
    /// re-allocating the FIFO ring storage.
    pub fn reset(&mut self) {
        for q in &mut self.fifos {
            q.clear();
        }
        self.generation = 0;
    }

    /// Monotonic change counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn fifo_mut(&mut self, fifo: u8) -> Result<&mut VecDeque<Packet>> {
        let n = self.fifos.len();
        self.fifos.get_mut(fifo as usize).ok_or_else(|| PumaError::Execution {
            what: format!("fifo {fifo} out of range ({n} fifos)"),
        })
    }

    /// True if the FIFO has no free entry (network backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn is_full(&self, fifo: u8) -> Result<bool> {
        let q = self.fifos.get(fifo as usize).ok_or_else(|| PumaError::Execution {
            what: format!("fifo {fifo} out of range ({} fifos)", self.fifos.len()),
        })?;
        Ok(q.len() >= self.depth)
    }

    /// Attempts to deliver a packet; returns false (packet untouched) if the
    /// FIFO is full.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn try_push(&mut self, fifo: u8, packet: Packet) -> Result<bool> {
        if self.is_full(fifo)? {
            return Ok(false);
        }
        self.fifo_mut(fifo)?.push_back(packet);
        self.generation += 1;
        Ok(true)
    }

    /// Pops the oldest packet, or `None` if the FIFO is empty (the receive
    /// instruction blocks).
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn pop(&mut self, fifo: u8) -> Result<Option<Packet>> {
        let popped = self.fifo_mut(fifo)?.pop_front();
        if popped.is_some() {
            self.generation += 1;
        }
        Ok(popped)
    }

    /// Peeks at the oldest packet without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Execution`] for an out-of-range FIFO id.
    pub fn front(&self, fifo: u8) -> Result<Option<&Packet>> {
        self.fifos.get(fifo as usize).map(|q| q.front()).ok_or_else(|| PumaError::Execution {
            what: format!("fifo {fifo} out of range ({} fifos)", self.fifos.len()),
        })
    }

    /// Total queued packets across all FIFOs.
    pub fn queued_packets(&self) -> usize {
        self.fifos.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(tag: i16) -> Packet {
        Packet { words: vec![Fixed::from_bits(tag)] }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut rb = ReceiveBuffer::new(16, 2);
        assert!(rb.try_push(3, packet(1)).unwrap());
        assert!(rb.try_push(3, packet(2)).unwrap());
        assert_eq!(rb.pop(3).unwrap().unwrap(), packet(1));
        assert_eq!(rb.pop(3).unwrap().unwrap(), packet(2));
        assert!(rb.pop(3).unwrap().is_none());
    }

    #[test]
    fn depth_limits_occupancy() {
        let mut rb = ReceiveBuffer::new(2, 2);
        assert!(rb.try_push(0, packet(1)).unwrap());
        assert!(rb.try_push(0, packet(2)).unwrap());
        assert!(rb.is_full(0).unwrap());
        assert!(!rb.try_push(0, packet(3)).unwrap(), "third push must be refused");
        let _ = rb.pop(0).unwrap();
        assert!(rb.try_push(0, packet(3)).unwrap());
    }

    #[test]
    fn fifos_are_independent() {
        let mut rb = ReceiveBuffer::new(2, 1);
        assert!(rb.try_push(0, packet(1)).unwrap());
        assert!(rb.try_push(1, packet(2)).unwrap());
        assert_eq!(rb.pop(1).unwrap().unwrap(), packet(2));
        assert_eq!(rb.pop(0).unwrap().unwrap(), packet(1));
    }

    #[test]
    fn out_of_range_fifo_is_error() {
        let mut rb = ReceiveBuffer::new(4, 2);
        assert!(rb.try_push(4, packet(0)).is_err());
        assert!(rb.pop(200).is_err());
        assert!(rb.is_full(4).is_err());
        assert!(rb.front(4).is_err());
    }

    #[test]
    fn generation_counts_pushes_and_pops() {
        let mut rb = ReceiveBuffer::new(1, 1);
        let g0 = rb.generation();
        rb.try_push(0, packet(1)).unwrap();
        let g1 = rb.generation();
        assert!(g1 > g0);
        let _ = rb.try_push(0, packet(2)).unwrap(); // refused, no change
        assert_eq!(rb.generation(), g1);
        rb.pop(0).unwrap();
        assert!(rb.generation() > g1);
    }

    #[test]
    fn queued_packets_sums_fifos() {
        let mut rb = ReceiveBuffer::new(3, 2);
        rb.try_push(0, packet(1)).unwrap();
        rb.try_push(2, packet(2)).unwrap();
        assert_eq!(rb.queued_packets(), 2);
        assert_eq!(rb.front(0).unwrap().unwrap(), &packet(1));
    }
}
