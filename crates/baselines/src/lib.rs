//! Analytic baseline platform models for the PUMA evaluation.
//!
//! - [`platform`] — roofline models of the Table 4 CPUs and GPUs (Haswell,
//!   Skylake, Kepler, Maxwell, Pascal) with batch-size support for the
//!   Fig. 11 comparisons;
//! - [`accelerators`] — the Table 6/7 comparison against Google's TPU and
//!   the application-specific memristor accelerator ISAAC.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerators;
pub mod platform;

pub use accelerators::{isaac_row, programmability_comparison, puma_row, tpu_row, AcceleratorRow};
pub use platform::{estimate, table4_platforms, BaselineEstimate, PlatformSpec};
