//! Accelerator comparison data (Table 6 and Table 7 of the paper).
//!
//! The paper compares PUMA against Google's TPU and the application-
//! specific memristor accelerator ISAAC using their published numbers; we
//! embed the same constants and compute PUMA's side from our own hardware
//! model so the table regenerates from first principles.

use puma_core::config::NodeConfig;
use puma_core::hwmodel;
use puma_core::timing::MVM_INITIATION_INTERVAL_128;
use serde::{Deserialize, Serialize};

/// One accelerator's Table 6 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorRow {
    /// Platform name.
    pub name: String,
    /// Year of publication.
    pub year: u32,
    /// Technology description.
    pub technology: String,
    /// Clock in MHz.
    pub clock_mhz: u32,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Peak throughput in TOPS/s (MAC = 2 ops, 16-bit).
    pub peak_tops: f64,
    /// Best area efficiency per workload class (TOPS/s/mm²):
    /// (MLP, LSTM, CNN); None = workload unsupported.
    pub best_ae: [Option<f64>; 3],
    /// Best power efficiency per workload class (TOPS/s/W).
    pub best_pe: [Option<f64>; 3],
}

impl AcceleratorRow {
    /// Peak area efficiency in TOPS/s/mm².
    pub fn peak_ae(&self) -> f64 {
        self.peak_tops / self.area_mm2
    }

    /// Peak power efficiency in TOPS/s/W.
    pub fn peak_pe(&self) -> f64 {
        self.peak_tops / self.power_w
    }
}

/// PUMA's row, computed from the hardware model.
///
/// PUMA's efficiency is workload-independent (crossbars do not rely on
/// weight reuse), so best per-class efficiency equals peak (§7.4.1).
pub fn puma_row(cfg: &NodeConfig) -> AcceleratorRow {
    let ap = hwmodel::node_area_power(cfg);
    let ii = MVM_INITIATION_INTERVAL_128 as f64 * cfg.tile.core.mvmu.dim as f64 / 128.0;
    let tops = hwmodel::peak_tops(cfg, ii);
    let ae = tops / ap.area_mm2;
    let pe = tops / (ap.power_mw / 1e3);
    AcceleratorRow {
        name: "PUMA".into(),
        year: 2018,
        technology: "CMOS(32nm)-Memristive".into(),
        clock_mhz: cfg.clock_mhz as u32,
        area_mm2: ap.area_mm2,
        power_w: ap.power_mw / 1e3,
        peak_tops: tops,
        best_ae: [Some(ae), Some(ae), Some(ae)],
        best_pe: [Some(pe), Some(pe), Some(pe)],
    }
}

/// TPU's published row (Table 6; 92 8-bit TOPS scaled by 4 for 16-bit).
pub fn tpu_row() -> AcceleratorRow {
    AcceleratorRow {
        name: "TPU".into(),
        year: 2017,
        technology: "CMOS(28nm)".into(),
        clock_mhz: 700,
        area_mm2: 330.0,
        power_w: 45.0,
        peak_tops: 23.0,
        best_ae: [Some(0.009), Some(0.003), Some(0.06)],
        best_pe: [Some(0.07), Some(0.02), Some(0.48)],
    }
}

/// ISAAC's published row (Table 6; CNN-only accelerator).
pub fn isaac_row() -> AcceleratorRow {
    AcceleratorRow {
        name: "ISAAC".into(),
        year: 2016,
        technology: "CMOS(32nm)-Memristive".into(),
        clock_mhz: 1200,
        area_mm2: 85.4,
        power_w: 65.8,
        peak_tops: 69.53,
        best_ae: [None, None, Some(0.82)],
        best_pe: [None, None, Some(1.06)],
    }
}

/// A Table 7 programmability row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgrammabilityRow {
    /// Aspect compared.
    pub aspect: String,
    /// PUMA's answer.
    pub puma: String,
    /// ISAAC's answer.
    pub isaac: String,
}

/// The Table 7 comparison.
pub fn programmability_comparison() -> Vec<ProgrammabilityRow> {
    let row = |aspect: &str, puma: &str, isaac: &str| ProgrammabilityRow {
        aspect: aspect.into(),
        puma: puma.into(),
        isaac: isaac.into(),
    };
    vec![
        row(
            "Architecture",
            "Instruction execution pipeline, flexible inter-core synchronization",
            "Application specific state machine",
        ),
        row("Function units", "Vector Functional Unit, ROM-Embedded RAM", "Sigmoid unit"),
        row(
            "Programmability",
            "Compiler-generated instructions (per tile & core)",
            "Manually configured state machine (per tile)",
        ),
        row(
            "Workloads",
            "CNN, MLP, LSTM, RNN, GAN, BM, RBM, SVM, Linear/Logistic Regression",
            "CNN",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puma_peak_matches_paper_claims() {
        let row = puma_row(&NodeConfig::default());
        assert!((row.peak_tops - 52.31).abs() < 1.0, "{}", row.peak_tops);
        assert!((row.peak_ae() - 0.577).abs() < 0.03, "{}", row.peak_ae());
        assert!((row.peak_pe() - 0.837).abs() < 0.05, "{}", row.peak_pe());
    }

    #[test]
    fn puma_beats_tpu_on_area_efficiency() {
        let puma = puma_row(&NodeConfig::default());
        let tpu = tpu_row();
        // Paper: 8.3× peak AE, 1.65× peak PE.
        let ae_ratio = puma.peak_ae() / tpu.peak_ae();
        let pe_ratio = puma.peak_pe() / tpu.peak_pe();
        assert!((6.0..11.0).contains(&ae_ratio), "AE ratio {ae_ratio}");
        assert!((1.2..2.2).contains(&pe_ratio), "PE ratio {pe_ratio}");
    }

    #[test]
    fn isaac_wins_on_raw_efficiency() {
        // Paper: PUMA pays 20.7% PE / 29.2% AE for programmability.
        let puma = puma_row(&NodeConfig::default());
        let isaac = isaac_row();
        assert!(puma.peak_pe() < isaac.peak_pe());
        assert!(puma.peak_ae() < isaac.peak_ae());
        let pe_gap = 1.0 - puma.peak_pe() / isaac.peak_pe();
        assert!((0.1..0.3).contains(&pe_gap), "PE gap {pe_gap}");
    }

    #[test]
    fn isaac_supports_only_cnns() {
        let isaac = isaac_row();
        assert!(isaac.best_ae[0].is_none() && isaac.best_ae[1].is_none());
        assert!(isaac.best_ae[2].is_some());
    }

    #[test]
    fn puma_efficiency_is_workload_independent() {
        let puma = puma_row(&NodeConfig::default());
        assert_eq!(puma.best_ae[0], puma.best_ae[2]);
        assert_eq!(puma.best_pe[0], puma.best_pe[1]);
    }

    #[test]
    fn programmability_table_has_workloads_row() {
        let rows = programmability_comparison();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.puma.contains("LSTM") && r.isaac == "CNN"));
    }
}
