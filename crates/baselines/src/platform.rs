//! Analytic models of the baseline platforms (Table 4 of the paper).
//!
//! The paper measures real hardware (Torch7 on the CPUs/GPUs, board power
//! via BMC/nvidia-smi); we substitute roofline-style analytic models: a
//! batch-`B` inference is compute-bound at the platform's sustained
//! throughput or memory-bound on weight traffic (weights are fetched from
//! DRAM once per batch — the data-batching amortization that Fig. 11(c,d)
//! hinges on), whichever is slower. Energy is board power × latency plus
//! DRAM transfer energy. The constants are public specifications of each
//! platform; a sustained-efficiency derate reflects the utilization gap on
//! small-batch inference.

use puma_nn::spec::{LayerSpec, WorkloadClass, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Latency multiplier for recurrent workloads on GPUs: step-serialized
/// per-gate GEMV kernels run far below roofline in Torch7 (launch
/// overheads, no fusion). Calibrated against the paper's Fig. 11 LSTM
/// ratios; see EXPERIMENTS.md.
pub const GPU_RECURRENT_PENALTY: f64 = 6.0;
/// Same effect on CPUs, milder (no kernel-launch cliff).
pub const CPU_RECURRENT_PENALTY: f64 = 3.0;

/// A baseline platform's roofline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Display name (Table 4).
    pub name: String,
    /// Peak 16/32-bit multiply-add throughput, in GOP/s (MAC = 2 ops).
    pub peak_gops: f64,
    /// DRAM bandwidth in GB/s.
    pub mem_bw_gb_s: f64,
    /// Board/device power in watts.
    pub power_w: f64,
    /// DRAM access energy per byte, in nJ.
    pub dram_nj_per_byte: f64,
    /// Fraction of peak sustained on dense inference kernels.
    pub efficiency: f64,
    /// Per-inference framework/launch overhead in microseconds.
    pub overhead_us: f64,
}

/// The five CPU/GPU baselines of Table 4.
pub fn table4_platforms() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec {
            // Xeon E5-2650v3, dual socket: 2×10 cores × 2.3 GHz × 32 flops.
            name: "Haswell".into(),
            peak_gops: 1472.0,
            mem_bw_gb_s: 68.0,
            power_w: 210.0,
            dram_nj_per_byte: 20.0e-3 * 8.0, // ~20 pJ/bit
            efficiency: 0.55,
            overhead_us: 20.0,
        },
        PlatformSpec {
            // Xeon 8180, dual socket: 2×28 cores × 2.5 GHz × 64 flops.
            name: "Skylake".into(),
            peak_gops: 8960.0,
            mem_bw_gb_s: 120.0,
            power_w: 410.0,
            dram_nj_per_byte: 0.15,
            efficiency: 0.45,
            overhead_us: 20.0,
        },
        PlatformSpec {
            // Tesla K80, one of the two GK210 dies.
            name: "Kepler".into(),
            peak_gops: 4370.0,
            mem_bw_gb_s: 240.0,
            power_w: 150.0,
            dram_nj_per_byte: 0.12,
            efficiency: 0.5,
            overhead_us: 10.0,
        },
        PlatformSpec {
            // GeForce Titan X (Maxwell).
            name: "Maxwell".into(),
            peak_gops: 6700.0,
            mem_bw_gb_s: 336.0,
            power_w: 250.0,
            dram_nj_per_byte: 0.10,
            efficiency: 0.55,
            overhead_us: 10.0,
        },
        PlatformSpec {
            // Tesla P100 (HBM2).
            name: "Pascal".into(),
            peak_gops: 10600.0,
            mem_bw_gb_s: 732.0,
            power_w: 250.0,
            dram_nj_per_byte: 0.06,
            efficiency: 0.6,
            overhead_us: 10.0,
        },
    ]
}

/// Performance estimate of a batch-`B` inference on a baseline platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineEstimate {
    /// Whole-batch latency in nanoseconds.
    pub batch_latency_ns: f64,
    /// Whole-batch energy in nanojoules.
    pub batch_energy_nj: f64,
    /// Batch size used.
    pub batch: usize,
}

impl BaselineEstimate {
    /// Per-inference latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.batch_latency_ns / self.batch as f64
    }

    /// Per-inference energy in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.batch_energy_nj / self.batch as f64
    }

    /// Inferences per second.
    pub fn throughput(&self) -> f64 {
        self.batch as f64 / (self.batch_latency_ns * 1e-9)
    }
}

/// DRAM weight traffic for one batch: feed-forward weights stream once,
/// recurrent-layer weights stream once **per time step** (multi-hundred-MB
/// LSTMs cannot be cached, so every step re-fetches them — the missing
/// amortization that drives §7.1/§7.2).
pub fn weight_traffic_bytes(workload: &WorkloadSpec) -> f64 {
    workload
        .layers
        .iter()
        .map(|l| {
            let passes = match l {
                LayerSpec::Lstm { .. } | LayerSpec::Rnn { .. } => workload.seq_len as u64,
                _ => 1,
            };
            (l.params() * 2 * passes) as f64
        })
        .sum()
}

/// Evaluates the roofline for one workload at batch size `batch`.
///
/// Memory traffic: weights stream from DRAM once per batch per required
/// pass (see [`weight_traffic_bytes`]); CNN weights are tiny relative to
/// their MACs, so CNNs are compute-bound, while MLP/LSTM weights dominate
/// and make small batches memory-bound — the §7.1/§7.2 regimes.
/// Activations stream per inference.
pub fn estimate(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    batch: usize,
) -> BaselineEstimate {
    let b = batch.max(1) as f64;
    let total_ops = 2.0 * workload.total_macs() as f64 * b;
    let compute_ns = total_ops / (platform.peak_gops * platform.efficiency);
    let weight_bytes = weight_traffic_bytes(workload);
    let act_bytes = 2.0 * workload.total_activation_elems() as f64 * b;
    let mem_bytes = weight_bytes + act_bytes;
    let mem_ns = mem_bytes / platform.mem_bw_gb_s;
    let recurrent =
        workload.layers.iter().any(|l| matches!(l, LayerSpec::Lstm { .. } | LayerSpec::Rnn { .. }));
    let penalty = if !recurrent {
        1.0
    } else if platform.name == "Haswell" || platform.name == "Skylake" {
        CPU_RECURRENT_PENALTY
    } else {
        GPU_RECURRENT_PENALTY
    };
    let latency_ns = compute_ns.max(mem_ns) * penalty + platform.overhead_us * 1e3;
    let energy_nj = platform.power_w * latency_ns * 1e-9 * 1e9 // W × s → J → nJ
        + mem_bytes * platform.dram_nj_per_byte;
    BaselineEstimate { batch_latency_ns: latency_ns, batch_energy_nj: energy_nj, batch }
}

/// True if the workload is memory-bound on this platform at batch 1
/// (drives the Fig. 11 regime analysis).
pub fn is_memory_bound(platform: &PlatformSpec, workload: &WorkloadSpec) -> bool {
    let ops = 2.0 * workload.total_macs() as f64;
    let compute_ns = ops / (platform.peak_gops * platform.efficiency);
    let mem_ns = weight_traffic_bytes(workload) / platform.mem_bw_gb_s;
    mem_ns > compute_ns
}

/// Workload-class label used in result tables.
pub fn class_label(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Mlp => "MLP",
        WorkloadClass::DeepLstm => "Deep LSTM",
        WorkloadClass::WideLstm => "Wide LSTM",
        WorkloadClass::Cnn => "CNN",
        WorkloadClass::Rnn => "RNN",
        WorkloadClass::Boltzmann => "BM/RBM",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puma_nn::zoo::spec;

    fn pascal() -> PlatformSpec {
        table4_platforms().into_iter().find(|p| p.name == "Pascal").unwrap()
    }

    fn haswell() -> PlatformSpec {
        table4_platforms().into_iter().find(|p| p.name == "Haswell").unwrap()
    }

    #[test]
    fn five_platforms_defined() {
        let names: Vec<String> = table4_platforms().into_iter().map(|p| p.name).collect();
        assert_eq!(names, ["Haswell", "Skylake", "Kepler", "Maxwell", "Pascal"]);
    }

    #[test]
    fn lstms_are_memory_bound_cnns_are_not() {
        let p = pascal();
        assert!(is_memory_bound(&p, &spec("BigLSTM")));
        assert!(is_memory_bound(&p, &spec("NMTL3")));
        assert!(!is_memory_bound(&p, &spec("Vgg16")));
    }

    #[test]
    fn batching_amortizes_weight_traffic() {
        let p = pascal();
        let w = spec("MLPL5");
        let b1 = estimate(&p, &w, 1);
        let b128 = estimate(&p, &w, 128);
        // Per-inference latency drops sharply with batching for
        // memory-bound workloads.
        assert!(b128.latency_ns() < b1.latency_ns() / 4.0);
        assert!(b128.throughput() > 10.0 * b1.throughput());
    }

    #[test]
    fn pascal_beats_haswell() {
        let w = spec("Vgg16");
        let fast = estimate(&pascal(), &w, 1);
        let slow = estimate(&haswell(), &w, 1);
        assert!(fast.batch_latency_ns < slow.batch_latency_ns);
    }

    #[test]
    fn estimates_are_positive_for_all_workloads() {
        for p in table4_platforms() {
            for w in puma_nn::zoo::all_specs() {
                let e = estimate(&p, &w, 1);
                assert!(e.batch_latency_ns > 0.0, "{} on {}", w.name, p.name);
                assert!(e.batch_energy_nj > 0.0);
            }
        }
    }

    #[test]
    fn vgg_latency_is_compute_dominated() {
        // Sanity: VGG16 on Pascal ≈ 31 GOPS / (10.6 TOPS × 0.6) ≈ 5 ms.
        let e = estimate(&pascal(), &spec("Vgg16"), 1);
        let ms = e.latency_ns() * 1e-6;
        assert!((1.0..20.0).contains(&ms), "VGG16 on Pascal: {ms} ms");
    }
}
