//! Zoo integration: every graph workload compiles; small ones run
//! functionally; the Fig. 4 set produces plausible instruction mixes.

use puma_compiler::{compile, fit_config, CompilerOptions};
use puma_core::config::NodeConfig;
use puma_isa::InstructionCategory;
use puma_nn::zoo;
use puma_nn::WeightFactory;
use puma_sim::{NodeSim, SimMode};
use puma_xbar::NoiseModel;

#[test]
fn fig4_workloads_compile_with_sane_mixes() {
    let cfg = NodeConfig::default();
    for name in
        ["MLP-64-150-150-14", "LSTM-26-120-61", "RNN-26-93-61", "BM-V500-H500", "RBM-V500-H500"]
    {
        let spec = zoo::spec(name);
        let mut wf = WeightFactory::materialized(3);
        let model = zoo::build_graph_model(&spec, &mut wf, Some(2)).unwrap().unwrap();
        let compiled = compile(&model, &cfg, &CompilerOptions::default()).unwrap();
        let hist = compiled.image.category_histogram();
        let total: usize = hist.values().sum();
        assert!(total > 10, "{name}: too few instructions");
        let mvm = hist.get(&InstructionCategory::Mvm).copied().unwrap_or(0);
        let vfu = hist.get(&InstructionCategory::Vfu).copied().unwrap_or(0);
        assert!(mvm > 0, "{name}: no MVM instructions");
        assert!(vfu > mvm, "{name}: VFU should dominate MVM statically (Fig. 4)");
    }
}

#[test]
fn small_lstm_runs_functionally_end_to_end() {
    let cfg = NodeConfig::default();
    let spec = zoo::spec("LSTM-26-120-61");
    let mut wf = WeightFactory::materialized(4);
    let model = zoo::build_graph_model(&spec, &mut wf, Some(2)).unwrap().unwrap();
    let compiled = compile(&model, &cfg, &CompilerOptions::default()).unwrap();
    let cfg = fit_config(&cfg, &compiled);
    let mut sim =
        NodeSim::new(cfg, &compiled.image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    for (b, v) in &compiled.const_data {
        sim.write_input(&b.name, v).unwrap();
    }
    for io in &compiled.inputs {
        let data: Vec<f32> = (0..io.width).map(|i| (i % 9) as f32 * 0.05 - 0.2).collect();
        let mut off = 0;
        for (chunk, &w) in io.chunks.iter().zip(io.chunk_widths.iter()) {
            sim.write_input(chunk, &data[off..off + w]).unwrap();
            off += w;
        }
    }
    sim.run().unwrap();
    let out_meta = &compiled.outputs[0];
    let mut out = Vec::new();
    for chunk in &out_meta.chunks {
        out.extend(sim.read_output(chunk).unwrap());
    }
    assert_eq!(out.len(), 61);
    // Sigmoid outputs live in (0, 1).
    assert!(out.iter().all(|v| (*v > -0.01) && (*v < 1.01)), "{out:?}");
    assert!(sim.stats().mvmu_activations > 10);
}

#[test]
fn big_models_compile_shape_only_within_budget() {
    // BigLSTM at one step: ~52k weight tiles across thousands of tiles.
    let cfg = NodeConfig::default();
    let spec = zoo::spec("BigLSTM");
    let mut wf = WeightFactory::shape_only(5);
    let model = zoo::build_graph_model(&spec, &mut wf, Some(1)).unwrap().unwrap();
    let compiled = compile(&model, &cfg, &CompilerOptions::timing_only()).unwrap();
    let expected_tiles = (spec.params() / (128 * 128)) as f64;
    let ratio = compiled.stats.weight_tiles as f64 / expected_tiles;
    assert!(
        (0.8..1.5).contains(&ratio),
        "weight tiles {} vs params/16k {}",
        compiled.stats.weight_tiles,
        expected_tiles
    );
    assert_eq!(compiled.image.weight_bytes(), 0);
}

#[test]
fn table5_macs_match_published_scale() {
    // Table 5 says 5M-800M synapses; MACs per step should track params for
    // non-CNN workloads.
    for name in ["MLPL4", "NMTL3", "BigLSTM"] {
        let s = zoo::spec(name);
        let per_step: u64 = s.layers.iter().map(|l| l.macs()).sum();
        let params = s.params();
        let ratio = per_step as f64 / params as f64;
        assert!((0.5..1.5).contains(&ratio), "{name}: MACs/params {ratio}");
    }
}
