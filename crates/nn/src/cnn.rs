//! Looped CNN layer code generation.
//!
//! The graph compiler unrolls dataflow; convolutions instead need control
//! flow "to represent the workload compactly without code bloat" (§2.3.1).
//! This module emits genuine loop nests in PUMA assembly for small CNNs
//! (LeNet-5 class): each layer runs on its own core of one tile, layers
//! communicate feature maps through tile shared memory using the attribute
//! protocol, and the sliding-window input reuse of §3.2.3 is expressed
//! with the MVM `filter`/`stride` operands over a ring buffer in XbarIn.
//!
//! Limits (checked at build time): per layer, the flattened window
//! `C·R·S` must fit `mvmus_per_core` crossbars, output channels must fit
//! one crossbar column strip, and the network must fit one tile's cores.
//! Node-scale CNNs (VGG) use the analytic model in [`crate::perf`]
//! instead; see DESIGN.md.

use crate::init::WeightRng;
use crate::spec::{conv_output, Activation, LayerSpec, WorkloadSpec};
use puma_core::config::NodeConfig;
use puma_core::error::{PumaError, Result};
use puma_core::ids::TileId;
use puma_core::tensor::Matrix;
use puma_isa::{AluOp, Instruction, IoBinding, MachineImage, MemAddr, MvmuMask, Program, RegRef};
use serde::{Deserialize, Serialize};

/// A compiled CNN: image plus host metadata and the f32 reference weights.
#[derive(Debug, Clone)]
pub struct CompiledCnn {
    /// The machine image (single tile).
    pub image: MachineImage,
    /// Input feature-map geometry (channels, height, width).
    pub input_shape: (usize, usize, usize),
    /// Name of the input binding.
    pub input_name: String,
    /// Name of the output binding.
    pub output_name: String,
    /// Output width.
    pub output_width: usize,
    /// Reference weights per layer (for host-side verification).
    pub reference: ReferenceCnn,
    /// Static control-flow instruction count (for Fig. 4).
    pub static_instructions: usize,
}

/// Host-side f32 reference of the generated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceCnn {
    layers: Vec<RefLayer>,
    input_shape: (usize, usize, usize),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RefLayer {
    Conv {
        // weights[m][c][ky][kx]
        weights: Vec<f32>,
        bias: Vec<f32>,
        c: usize,
        m: usize,
        r: usize,
        s: usize,
        u: usize,
        act: Activation,
    },
    Pool {
        window: usize,
    },
    Fc {
        weights: Matrix,
        bias: Vec<f32>,
        act: Activation,
    },
}

impl ReferenceCnn {
    /// Runs the reference forward pass on a `[y][x][c]`-ordered input.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let (mut c, mut h, mut w) = self.input_shape;
        let mut fmap = input.to_vec();
        for layer in &self.layers {
            match layer {
                RefLayer::Conv { weights, bias, c: ci, m, r, s, u, act } => {
                    debug_assert_eq!(*ci, c);
                    let (ho, wo) = conv_output(h, w, *r, *u);
                    let mut out = vec![0.0f32; ho * wo * m];
                    for yo in 0..ho {
                        for xo in 0..wo {
                            for mi in 0..*m {
                                let mut acc = bias[mi];
                                for ky in 0..*r {
                                    for kx in 0..*s {
                                        for cc in 0..c {
                                            let iv =
                                                fmap[((yo * u + ky) * w + (xo * u + kx)) * c + cc];
                                            let wv = weights[((mi * c + cc) * r + ky) * s + kx];
                                            acc += iv * wv;
                                        }
                                    }
                                }
                                out[(yo * wo + xo) * m + mi] = apply_act(acc, *act);
                            }
                        }
                    }
                    fmap = out;
                    c = *m;
                    h = ho;
                    w = wo;
                }
                RefLayer::Pool { window } => {
                    let (ho, wo) = (h / window, w / window);
                    let mut out = vec![f32::NEG_INFINITY; ho * wo * c];
                    for yo in 0..ho {
                        for xo in 0..wo {
                            for cc in 0..c {
                                let mut best = f32::NEG_INFINITY;
                                for ky in 0..*window {
                                    for kx in 0..*window {
                                        let v = fmap[((yo * window + ky) * w + (xo * window + kx))
                                            * c
                                            + cc];
                                        best = best.max(v);
                                    }
                                }
                                out[(yo * wo + xo) * c + cc] = best;
                            }
                        }
                    }
                    fmap = out;
                    h = ho;
                    w = wo;
                }
                RefLayer::Fc { weights, bias, act } => {
                    let mut out = weights.mvm(&fmap).expect("fc shape");
                    for (o, b) in out.iter_mut().zip(bias) {
                        *o = apply_act(*o + b, *act);
                    }
                    fmap = out;
                    c = out_len(weights);
                    h = 1;
                    w = 1;
                }
            }
        }
        fmap
    }
}

fn out_len(m: &Matrix) -> usize {
    m.cols()
}

fn apply_act(v: f32, act: Activation) -> f32 {
    match act {
        Activation::None => v,
        Activation::Relu => v.max(0.0),
        Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        Activation::Tanh => v.tanh(),
    }
}

/// Scratch-register layout for the generated loops (general registers).
mod regs {
    /// y loop counter.
    pub const Y: u16 = 0;
    /// x loop counter.
    pub const X: u16 = 1;
    /// Constant 1.
    pub const ONE: u16 = 2;
    /// Loop bound (varies).
    pub const BOUND: u16 = 3;
    /// Input column address cursor.
    pub const IN_ADDR: u16 = 4;
    /// Output address cursor.
    pub const OUT_ADDR: u16 = 5;
    /// Per-x input address increment constant.
    pub const IN_STEP_X: u16 = 6;
    /// Row-start rewind constant.
    pub const IN_STEP_Y: u16 = 7;
    /// Output step constant.
    pub const OUT_STEP: u16 = 8;
}

/// Offset of the accumulator vector within the general register file
/// (after the scratch registers).
const ACC: u16 = 16;

struct LayerCtx {
    program: Vec<Instruction>,
    weights: Vec<Option<puma_core::tensor::FixedMatrix>>,
}

fn set_u16(program: &mut Vec<Instruction>, reg: u16, value: usize) {
    assert!(value <= i16::MAX as usize, "immediate {value} exceeds 15 bits");
    program.push(Instruction::Set { dest: RegRef::general(reg), imm: value as i16 });
}

/// Builds a compiled CNN with deterministic weights.
///
/// `dim` etc. come from `cfg`; `input_shuffling` selects the §3.2.3 window
/// reuse (only applied to conv layers whose window fits one crossbar).
///
/// # Errors
///
/// Returns [`PumaError::Compile`] if the network violates the generator's
/// mapping limits (see module docs).
pub fn build_cnn(
    spec: &WorkloadSpec,
    cfg: &NodeConfig,
    input_shuffling: bool,
    seed: u64,
) -> Result<CompiledCnn> {
    let dim = cfg.tile.core.mvmu.dim;
    let mvmus = cfg.tile.core.mvmus_per_core;
    let mut rng = WeightRng::new(seed);

    // Input geometry from the first layer.
    let (mut c, mut h, mut w) = match spec.layers.first() {
        Some(LayerSpec::Conv { input, height, width, .. }) => (*input, *height, *width),
        Some(LayerSpec::Pool { channels, height, width, .. }) => (*channels, *height, *width),
        Some(LayerSpec::Fc { input, .. }) => (*input, 1, 1),
        _ => {
            return Err(PumaError::Compile {
                what: "CNN generator requires a conv/pool/fc first layer".to_string(),
            });
        }
    };
    let input_shape = (c, h, w);
    if spec.layers.len() > cfg.tile.cores_per_tile {
        return Err(PumaError::Compile {
            what: format!(
                "{} layers exceed {} cores per tile (node-scale CNNs use the analytic model)",
                spec.layers.len(),
                cfg.tile.cores_per_tile
            ),
        });
    }

    let mut image = MachineImage::new(1, cfg.tile.cores_per_tile, mvmus);
    let mut reference = ReferenceCnn { layers: Vec::new(), input_shape };

    // Feature-map regions in tile memory: region l = input of layer l.
    let mut region_base: Vec<u32> = Vec::with_capacity(spec.layers.len() + 1);
    let mut next_addr: u32 = 0;
    region_base.push(0);
    next_addr += (h * w * c) as u32;
    {
        let (mut cc, mut hh, mut ww) = (c, h, w);
        for layer in &spec.layers {
            let (co, ho, wo) = match *layer {
                LayerSpec::Conv { output, kernel, stride, .. } => {
                    let (ho, wo) = conv_output(hh, ww, kernel, stride);
                    (output, ho, wo)
                }
                LayerSpec::Pool { window, .. } => (cc, hh / window, ww / window),
                LayerSpec::Fc { output, .. } => (output, 1, 1),
                LayerSpec::Lstm { .. } | LayerSpec::Rnn { .. } => {
                    return Err(PumaError::Compile {
                        what: "recurrent layer in CNN generator".to_string(),
                    })
                }
            };
            region_base.push(next_addr);
            next_addr += (co * ho * wo) as u32;
            cc = co;
            hh = ho;
            ww = wo;
        }
    }
    if next_addr as usize > cfg.tile.shared_memory_words() {
        return Err(PumaError::ResourceExhausted {
            resource: "tile shared memory words".to_string(),
            requested: next_addr as usize,
            available: cfg.tile.shared_memory_words(),
        });
    }

    // Read-count of a region = how many times its *most-read* position is
    // loaded by the consuming layer (edges read less; leftover validity is
    // harmless in a single-shot run).
    let read_count = |layer: Option<&LayerSpec>, shuffled: bool| -> u16 {
        match layer {
            Some(LayerSpec::Conv { kernel, stride, .. }) => {
                let per_row = kernel.div_ceil(*stride) as u16;
                if shuffled {
                    per_row
                } else {
                    per_row * per_row
                }
            }
            Some(LayerSpec::Pool { .. }) | Some(LayerSpec::Fc { .. }) | None => 1,
            _ => 1,
        }
    };

    let layer_shuffled = |layer: &LayerSpec| -> bool {
        match *layer {
            LayerSpec::Conv { input, kernel, .. } => {
                input_shuffling && input * kernel * kernel <= dim
            }
            _ => false,
        }
    };

    for (li, layer) in spec.layers.iter().enumerate() {
        let in_base = region_base[li];
        let out_base = region_base[li + 1];
        let next = spec.layers.get(li + 1);
        let next_shuffled = next.map(&layer_shuffled).unwrap_or(false);
        let out_count = read_count(next, next_shuffled);
        let ctx = match *layer {
            LayerSpec::Conv { input, output, kernel, stride, height, width } => {
                let shuffled = layer_shuffled(layer);
                gen_conv(
                    &mut rng,
                    &mut reference,
                    dim,
                    mvmus,
                    ConvDims {
                        c: input,
                        m: output,
                        r: kernel,
                        s: kernel,
                        u: stride,
                        h: height,
                        w: width,
                    },
                    in_base,
                    out_base,
                    out_count,
                    shuffled,
                    Activation::Relu,
                )?
            }
            LayerSpec::Pool { channels, window, height, width } => gen_pool(
                &mut reference,
                channels,
                window,
                height,
                width,
                in_base,
                out_base,
                out_count,
            )?,
            LayerSpec::Fc { input, output, act } => gen_fc(
                &mut rng,
                &mut reference,
                dim,
                mvmus,
                input,
                output,
                in_base,
                out_base,
                out_count,
                act,
            )?,
            _ => unreachable!("validated above"),
        };
        let core = &mut image.tiles[0].cores[li];
        core.program = Program::from_instructions(ctx.program);
        for (i, wgt) in ctx.weights.into_iter().enumerate() {
            core.mvmu_weights[i] = wgt;
        }
        // Track geometry forward.
        match *layer {
            LayerSpec::Conv { output, kernel, stride, .. } => {
                let (ho, wo) = conv_output(h, w, kernel, stride);
                c = output;
                h = ho;
                w = wo;
            }
            LayerSpec::Pool { window, .. } => {
                h /= window;
                w /= window;
            }
            LayerSpec::Fc { output, .. } => {
                c = output;
                h = 1;
                w = 1;
            }
            LayerSpec::Lstm { .. } | LayerSpec::Rnn { .. } => unreachable!("validated above"),
        }
    }

    let first_count = read_count(spec.layers.first(), layer_shuffled(&spec.layers[0]));
    image.inputs.push(IoBinding {
        name: "image".to_string(),
        tile: TileId::new(0),
        addr: 0,
        width: input_shape.0 * input_shape.1 * input_shape.2,
        count: first_count,
    });
    let output_width = c * h * w;
    image.outputs.push(IoBinding {
        name: "logits".to_string(),
        tile: TileId::new(0),
        addr: *region_base.last().expect("regions"),
        width: output_width,
        count: 1,
    });
    let static_instructions = image.total_instructions();
    image.validate()?;
    Ok(CompiledCnn {
        image,
        input_shape,
        input_name: "image".to_string(),
        output_name: "logits".to_string(),
        output_width,
        reference,
        static_instructions,
    })
}

struct ConvDims {
    c: usize,
    m: usize,
    r: usize,
    s: usize,
    u: usize,
    h: usize,
    w: usize,
}

/// Emits the loop nest for one convolution layer.
#[allow(clippy::too_many_arguments)]
fn gen_conv(
    rng: &mut WeightRng,
    reference: &mut ReferenceCnn,
    dim: usize,
    mvmus: usize,
    d: ConvDims,
    in_base: u32,
    out_base: u32,
    out_count: u16,
    shuffled: bool,
    act: Activation,
) -> Result<LayerCtx> {
    let ConvDims { c, m, r, s, u, h, w } = d;
    let window = c * r * s;
    let row_tiles = window.div_ceil(dim);
    if row_tiles > mvmus {
        return Err(PumaError::ResourceExhausted {
            resource: "MVMUs per core (conv window tiles)".to_string(),
            requested: row_tiles,
            available: mvmus,
        });
    }
    if m > dim {
        return Err(PumaError::ResourceExhausted {
            resource: "crossbar columns (conv output channels)".to_string(),
            requested: m,
            available: dim,
        });
    }
    let (h_out, w_out) = conv_output(h, w, r, u);

    // Weights: raw tensor [m][c][ky][kx], plus the crossbar layout.
    let raw: Vec<f32> = (0..m * c * r * s).map(|_| rng.uniform() * 0.25).collect();
    let bias: Vec<f32> = rng.bias(m);
    // Row index of (ky, kx, c) in the crossbar matrix.
    let row_of = |ky: usize, kx: usize, cc: usize| -> usize {
        if shuffled {
            kx * r * c + ky * c + cc // ring layout [kx][ky][c]
        } else {
            ky * s * c + kx * c + cc // row-contiguous layout [ky][kx][c]
        }
    };
    let mut wmat = Matrix::zeros(window, m)?;
    for mi in 0..m {
        for cc in 0..c {
            for ky in 0..r {
                for kx in 0..s {
                    wmat.set(row_of(ky, kx, cc), mi, raw[((mi * c + cc) * r + ky) * s + kx]);
                }
            }
        }
    }
    reference.layers.push(RefLayer::Conv { weights: raw, bias: bias.clone(), c, m, r, s, u, act });

    let mut weights: Vec<Option<puma_core::tensor::FixedMatrix>> = vec![None; mvmus];
    let mut mask = 0u8;
    for (t, slot) in weights.iter_mut().enumerate().take(row_tiles) {
        let rows = (window - t * dim).min(dim);
        *slot = Some(wmat.tile(t * dim, 0, rows, m).quantize());
        mask |= 1 << t;
    }

    let mut p: Vec<Instruction> = Vec::new();
    // Bias preloaded as immediates into the BIAS register block.
    let bias_reg = ACC + dim as u16;
    for (i, &b) in bias.iter().enumerate() {
        p.push(Instruction::Set {
            dest: RegRef::general(bias_reg + i as u16),
            imm: puma_core::fixed::Fixed::from_f32(b).to_bits(),
        });
    }
    set_u16(&mut p, regs::ONE, 1);
    set_u16(&mut p, regs::Y, 0);
    set_u16(&mut p, regs::IN_ADDR, 0); // cursor relative to in_base
    set_u16(&mut p, regs::OUT_ADDR, 0);
    set_u16(&mut p, regs::IN_STEP_X, u * c);
    // Row step: the x walk advanced the cursor W_out times by u·c;
    // rewind it and advance u input rows.
    set_u16(&mut p, regs::IN_STEP_Y, u * w * c - w_out * u * c);
    set_u16(&mut p, regs::OUT_STEP, m);

    let y_loop_start = p.len() as u32;
    set_u16(&mut p, regs::X, 0);

    // The x loop is unrolled over the shuffle period so each phase gets its
    // static stride and write offsets (the stride operand is an immediate).
    let period = if shuffled { s.div_ceil(u) } else { 1 };
    let mut phase_branch_fixups: Vec<usize> = Vec::new();
    let x_loop_start;
    {
        // Phase 0 / full-window load.
        let full_loads = |p: &mut Vec<Instruction>| {
            if shuffled {
                // Column-by-column into the ring layout.
                for kx in 0..s {
                    for ky in 0..r {
                        p.push(Instruction::Load {
                            dest: RegRef::xbar_in((row_of(ky, kx, 0)) as u16),
                            addr: MemAddr::indexed(
                                in_base + ((ky * w + kx) * c) as u32,
                                RegRef::general(regs::IN_ADDR),
                            ),
                            width: c as u16,
                        });
                    }
                }
            } else {
                // Row-contiguous layout [ky][kx][c]: one load per window
                // row (the XbarIn bank is contiguous across MVMUs).
                for ky in 0..r {
                    p.push(Instruction::Load {
                        dest: RegRef::xbar_in(row_of(ky, 0, 0) as u16),
                        addr: MemAddr::indexed(
                            in_base + (ky * w * c) as u32,
                            RegRef::general(regs::IN_ADDR),
                        ),
                        width: (s * c) as u16,
                    });
                }
            }
        };

        // The ring rotation (filter + stride) only applies in shuffled
        // mode; the multi-crossbar layout relies on zero padding instead.
        let mvm_filter = if shuffled { window as u16 } else { 0 };
        let emit_body = |p: &mut Vec<Instruction>, stride_words: usize| {
            p.push(Instruction::Mvm {
                mask: MvmuMask(mask),
                filter: mvm_filter,
                stride: stride_words as u16,
            });
            // Reduce partials: copy first, add the rest.
            p.push(Instruction::Copy {
                dest: RegRef::general(ACC),
                src: RegRef::xbar_out(0),
                width: m as u16,
            });
            for t in 1..row_tiles {
                p.push(Instruction::Alu {
                    op: AluOp::Add,
                    dest: RegRef::general(ACC),
                    src1: RegRef::general(ACC),
                    src2: RegRef::xbar_out((t * dim) as u16),
                    width: m as u16,
                });
            }
            p.push(Instruction::Alu {
                op: AluOp::Add,
                dest: RegRef::general(ACC),
                src1: RegRef::general(ACC),
                src2: RegRef::general(bias_reg),
                width: m as u16,
            });
            match act {
                Activation::Relu => p.push(Instruction::Alu {
                    op: AluOp::Relu,
                    dest: RegRef::general(ACC),
                    src1: RegRef::general(ACC),
                    src2: RegRef::general(ACC),
                    width: m as u16,
                }),
                Activation::Sigmoid => p.push(Instruction::Alu {
                    op: AluOp::Sigmoid,
                    dest: RegRef::general(ACC),
                    src1: RegRef::general(ACC),
                    src2: RegRef::general(ACC),
                    width: m as u16,
                }),
                Activation::Tanh => p.push(Instruction::Alu {
                    op: AluOp::Tanh,
                    dest: RegRef::general(ACC),
                    src1: RegRef::general(ACC),
                    src2: RegRef::general(ACC),
                    width: m as u16,
                }),
                Activation::None => {}
            }
            p.push(Instruction::Store {
                addr: MemAddr::indexed(out_base, RegRef::general(regs::OUT_ADDR)),
                src: RegRef::general(ACC),
                count: out_count,
                width: m as u16,
            });
            // Advance cursors.
            p.push(Instruction::AluInt {
                op: puma_isa::ScalarOp::Add,
                dest: RegRef::general(regs::OUT_ADDR),
                src1: RegRef::general(regs::OUT_ADDR),
                src2: RegRef::general(regs::OUT_STEP),
            });
            p.push(Instruction::AluInt {
                op: puma_isa::ScalarOp::Add,
                dest: RegRef::general(regs::X),
                src1: RegRef::general(regs::X),
                src2: RegRef::general(regs::ONE),
            });
            p.push(Instruction::AluInt {
                op: puma_isa::ScalarOp::Add,
                dest: RegRef::general(regs::IN_ADDR),
                src1: RegRef::general(regs::IN_ADDR),
                src2: RegRef::general(regs::IN_STEP_X),
            });
        };

        // x = 0: full window.
        full_loads(&mut p);
        emit_body(&mut p, 0);
        x_loop_start = p.len() as u32;
        set_u16(&mut p, regs::BOUND, w_out);
        // Unrolled phases 1..period (phase index = x mod period).
        for phase in 1..=period {
            let ph = phase % period;
            // Exit check: if x >= W_out, leave the x loop.
            p.push(Instruction::Branch {
                cond: puma_isa::BranchCond::Ge,
                src1: RegRef::general(regs::X),
                src2: RegRef::general(regs::BOUND),
                pc: u32::MAX, // fixed up below
            });
            phase_branch_fixups.push(p.len() - 1);
            if shuffled {
                // Load only the new columns of window x (phase ph):
                // absolute cols xU+s-u..xU+s-1, ring slots (col mod s).
                for j in 0..u.min(s) {
                    let new_rel = s - u + j; // relative to window start
                    let ring_col = (ph * u + new_rel) % s;
                    for ky in 0..r {
                        p.push(Instruction::Load {
                            dest: RegRef::xbar_in(row_of(ky, ring_col, 0) as u16),
                            addr: MemAddr::indexed(
                                in_base + ((ky * w + new_rel) * c) as u32,
                                RegRef::general(regs::IN_ADDR),
                            ),
                            width: c as u16,
                        });
                    }
                }
                emit_body(&mut p, ((ph * u) % s) * r * c);
            } else {
                full_loads(&mut p);
                emit_body(&mut p, 0);
            }
        }
        p.push(Instruction::Jump { pc: x_loop_start + 1 });
    }
    let x_loop_end = p.len() as u32;
    for idx in phase_branch_fixups {
        if let Instruction::Branch { pc, .. } = &mut p[idx] {
            *pc = x_loop_end;
        }
    }
    // Row epilogue: advance the input cursor to the next window row and
    // loop on y.
    p.push(Instruction::AluInt {
        op: puma_isa::ScalarOp::Add,
        dest: RegRef::general(regs::IN_ADDR),
        src1: RegRef::general(regs::IN_ADDR),
        src2: RegRef::general(regs::IN_STEP_Y),
    });
    p.push(Instruction::AluInt {
        op: puma_isa::ScalarOp::Add,
        dest: RegRef::general(regs::Y),
        src1: RegRef::general(regs::Y),
        src2: RegRef::general(regs::ONE),
    });
    set_u16(&mut p, regs::BOUND, h_out);
    p.push(Instruction::Branch {
        cond: puma_isa::BranchCond::Lt,
        src1: RegRef::general(regs::Y),
        src2: RegRef::general(regs::BOUND),
        pc: y_loop_start,
    });
    p.push(Instruction::Halt);
    Ok(LayerCtx { program: p, weights })
}

/// Emits the loop nest for a max-pool layer.
#[allow(clippy::too_many_arguments)]
fn gen_pool(
    reference: &mut ReferenceCnn,
    channels: usize,
    window: usize,
    height: usize,
    width: usize,
    in_base: u32,
    out_base: u32,
    out_count: u16,
) -> Result<LayerCtx> {
    reference.layers.push(RefLayer::Pool { window });
    let (h_out, w_out) = (height / window, width / window);
    let c = channels;
    let mut p = Vec::new();
    set_u16(&mut p, regs::ONE, 1);
    set_u16(&mut p, regs::Y, 0);
    set_u16(&mut p, regs::IN_ADDR, 0);
    set_u16(&mut p, regs::OUT_ADDR, 0);
    set_u16(&mut p, regs::IN_STEP_X, window * c);
    set_u16(&mut p, regs::IN_STEP_Y, window * width * c - w_out * window * c);
    set_u16(&mut p, regs::OUT_STEP, c);
    let y_start = p.len() as u32;
    set_u16(&mut p, regs::X, 0);
    set_u16(&mut p, regs::BOUND, w_out);
    let x_start = p.len() as u32;
    // Load the window's position vectors into consecutive ACC blocks.
    for ky in 0..window {
        for kx in 0..window {
            let slot = (ky * window + kx) as u16;
            p.push(Instruction::Load {
                dest: RegRef::general(ACC + slot * c as u16),
                addr: MemAddr::indexed(
                    in_base + ((ky * width + kx) * c) as u32,
                    RegRef::general(regs::IN_ADDR),
                ),
                width: c as u16,
            });
        }
    }
    // Max-reduce into ACC.
    for slot in 1..(window * window) as u16 {
        p.push(Instruction::Alu {
            op: AluOp::Max,
            dest: RegRef::general(ACC),
            src1: RegRef::general(ACC),
            src2: RegRef::general(ACC + slot * c as u16),
            width: c as u16,
        });
    }
    p.push(Instruction::Store {
        addr: MemAddr::indexed(out_base, RegRef::general(regs::OUT_ADDR)),
        src: RegRef::general(ACC),
        count: out_count,
        width: c as u16,
    });
    for (dest, step) in
        [(regs::OUT_ADDR, regs::OUT_STEP), (regs::X, regs::ONE), (regs::IN_ADDR, regs::IN_STEP_X)]
    {
        p.push(Instruction::AluInt {
            op: puma_isa::ScalarOp::Add,
            dest: RegRef::general(dest),
            src1: RegRef::general(dest),
            src2: RegRef::general(step),
        });
    }
    p.push(Instruction::Branch {
        cond: puma_isa::BranchCond::Lt,
        src1: RegRef::general(regs::X),
        src2: RegRef::general(regs::BOUND),
        pc: x_start,
    });
    p.push(Instruction::AluInt {
        op: puma_isa::ScalarOp::Add,
        dest: RegRef::general(regs::IN_ADDR),
        src1: RegRef::general(regs::IN_ADDR),
        src2: RegRef::general(regs::IN_STEP_Y),
    });
    p.push(Instruction::AluInt {
        op: puma_isa::ScalarOp::Add,
        dest: RegRef::general(regs::Y),
        src1: RegRef::general(regs::Y),
        src2: RegRef::general(regs::ONE),
    });
    set_u16(&mut p, regs::BOUND, h_out);
    p.push(Instruction::Branch {
        cond: puma_isa::BranchCond::Lt,
        src1: RegRef::general(regs::Y),
        src2: RegRef::general(regs::BOUND),
        pc: y_start,
    });
    p.push(Instruction::Halt);
    Ok(LayerCtx { program: p, weights: Vec::new() })
}

/// Emits a fully-connected layer (one position, straight-line code).
#[allow(clippy::too_many_arguments)]
fn gen_fc(
    rng: &mut WeightRng,
    reference: &mut ReferenceCnn,
    dim: usize,
    mvmus: usize,
    input: usize,
    output: usize,
    in_base: u32,
    out_base: u32,
    out_count: u16,
    act: Activation,
) -> Result<LayerCtx> {
    let row_tiles = input.div_ceil(dim);
    if row_tiles > mvmus {
        return Err(PumaError::ResourceExhausted {
            resource: "MVMUs per core (fc input tiles)".to_string(),
            requested: row_tiles,
            available: mvmus,
        });
    }
    if output > dim {
        return Err(PumaError::ResourceExhausted {
            resource: "crossbar columns (fc outputs)".to_string(),
            requested: output,
            available: dim,
        });
    }
    let wmat = rng.xavier_matrix(input, output);
    let bias = rng.bias(output);
    reference.layers.push(RefLayer::Fc { weights: wmat.clone(), bias: bias.clone(), act });

    let mut weights: Vec<Option<puma_core::tensor::FixedMatrix>> = vec![None; mvmus];
    let mut mask = 0u8;
    for (t, slot) in weights.iter_mut().enumerate().take(row_tiles) {
        let rows = (input - t * dim).min(dim);
        *slot = Some(wmat.tile(t * dim, 0, rows, output).quantize());
        mask |= 1 << t;
    }
    let bias_reg = ACC + dim as u16;
    let mut p = Vec::new();
    for (i, &b) in bias.iter().enumerate() {
        p.push(Instruction::Set {
            dest: RegRef::general(bias_reg + i as u16),
            imm: puma_core::fixed::Fixed::from_f32(b).to_bits(),
        });
    }
    for t in 0..row_tiles {
        let width = (input - t * dim).min(dim);
        p.push(Instruction::Load {
            dest: RegRef::xbar_in((t * dim) as u16),
            addr: MemAddr::absolute(in_base + (t * dim) as u32),
            width: width as u16,
        });
    }
    p.push(Instruction::Mvm { mask: MvmuMask(mask), filter: 0, stride: 0 });
    p.push(Instruction::Copy {
        dest: RegRef::general(ACC),
        src: RegRef::xbar_out(0),
        width: output as u16,
    });
    for t in 1..row_tiles {
        p.push(Instruction::Alu {
            op: AluOp::Add,
            dest: RegRef::general(ACC),
            src1: RegRef::general(ACC),
            src2: RegRef::xbar_out((t * dim) as u16),
            width: output as u16,
        });
    }
    p.push(Instruction::Alu {
        op: AluOp::Add,
        dest: RegRef::general(ACC),
        src1: RegRef::general(ACC),
        src2: RegRef::general(bias_reg),
        width: output as u16,
    });
    let act_op = match act {
        Activation::Relu => Some(AluOp::Relu),
        Activation::Sigmoid => Some(AluOp::Sigmoid),
        Activation::Tanh => Some(AluOp::Tanh),
        Activation::None => None,
    };
    if let Some(op) = act_op {
        p.push(Instruction::Alu {
            op,
            dest: RegRef::general(ACC),
            src1: RegRef::general(ACC),
            src2: RegRef::general(ACC),
            width: output as u16,
        });
    }
    p.push(Instruction::Store {
        addr: MemAddr::absolute(out_base),
        src: RegRef::general(ACC),
        count: out_count,
        width: output as u16,
    });
    p.push(Instruction::Halt);
    Ok(LayerCtx { program: p, weights })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadClass;
    use puma_core::config::{CoreConfig, MvmuConfig, TileConfig};
    use puma_isa::InstructionCategory;
    use puma_sim::{NodeSim, SimMode};
    use puma_xbar::NoiseModel;

    fn cnn_config() -> NodeConfig {
        let mvmu = MvmuConfig { dim: 64, ..MvmuConfig::default() };
        NodeConfig {
            tile: TileConfig {
                core: CoreConfig {
                    mvmu,
                    mvmus_per_core: 2,
                    vfu_lanes: 4,
                    instruction_memory_bytes: 64 * 1024,
                    register_file_words: 64 * 4,
                },
                cores_per_tile: 8,
                shared_memory_bytes: 64 * 1024,
                ..TileConfig::default()
            },
            tiles_per_node: 2,
            ..NodeConfig::default()
        }
    }

    fn tiny_cnn() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            class: WorkloadClass::Cnn,
            layers: vec![
                LayerSpec::Conv { input: 2, output: 4, kernel: 3, stride: 1, height: 8, width: 8 },
                LayerSpec::Pool { channels: 4, window: 2, height: 6, width: 6 },
                LayerSpec::Fc { input: 36, output: 5, act: Activation::None },
            ],
            seq_len: 1,
        }
    }

    fn run_and_compare(spec: &WorkloadSpec, shuffling: bool, tol: f32) -> puma_sim::RunStats {
        let cfg = cnn_config();
        let cnn = build_cnn(spec, &cfg, shuffling, 99).unwrap();
        let mut sim =
            NodeSim::new(cfg, &cnn.image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
        let (c, h, w) = cnn.input_shape;
        let input: Vec<f32> = (0..c * h * w).map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.4).collect();
        sim.write_input(&cnn.input_name, &input).unwrap();
        sim.run().unwrap();
        let got = sim.read_output(&cnn.output_name).unwrap();
        let want = cnn.reference.forward(&input);
        assert_eq!(got.len(), want.len());
        for (i, (g, r)) in got.iter().zip(want.iter()).enumerate() {
            assert!((g - r).abs() < tol, "output[{i}]: {g} vs reference {r}");
        }
        sim.stats().clone()
    }

    #[test]
    fn tiny_cnn_matches_reference_without_shuffling() {
        run_and_compare(&tiny_cnn(), false, 0.05);
    }

    #[test]
    fn tiny_cnn_matches_reference_with_shuffling() {
        run_and_compare(&tiny_cnn(), true, 0.05);
    }

    #[test]
    fn shuffling_reduces_shared_memory_traffic() {
        let with = run_and_compare(&tiny_cnn(), true, 0.05);
        let without = run_and_compare(&tiny_cnn(), false, 0.05);
        assert!(
            with.shared_memory_words < without.shared_memory_words,
            "{} !< {}",
            with.shared_memory_words,
            without.shared_memory_words
        );
        assert!(with.energy.total_nj() < without.energy.total_nj());
    }

    #[test]
    fn programs_contain_control_flow() {
        let cnn = build_cnn(&tiny_cnn(), &cnn_config(), true, 1).unwrap();
        let hist = cnn.image.category_histogram();
        assert!(hist.get(&InstructionCategory::ControlFlow).copied().unwrap_or(0) > 3);
        assert!(hist.get(&InstructionCategory::Sfu).copied().unwrap_or(0) > 5);
    }

    #[test]
    fn lenet5_compiles_at_full_dimension() {
        let cfg = NodeConfig::default(); // 128-wide crossbars
        let cnn = build_cnn(&crate::zoo::spec("Lenet5"), &cfg, true, 2).unwrap();
        assert!(cnn.static_instructions > 100);
        assert_eq!(cnn.output_width, 10);
    }

    #[test]
    fn lenet5_runs_functionally() {
        let cfg = NodeConfig::default();
        let cnn = build_cnn(&crate::zoo::spec("Lenet5"), &cfg, true, 2).unwrap();
        let mut sim =
            NodeSim::new(cfg, &cnn.image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
        let input: Vec<f32> = (0..28 * 28).map(|i| ((i % 9) as f32) / 9.0 - 0.3).collect();
        sim.write_input("image", &input).unwrap();
        sim.run().unwrap();
        let got = sim.read_output("logits").unwrap();
        let want = cnn.reference.forward(&input);
        for (g, r) in got.iter().zip(want.iter()) {
            assert!((g - r).abs() < 0.15, "{g} vs {r}");
        }
    }

    #[test]
    fn oversized_networks_are_rejected() {
        let cfg = cnn_config();
        assert!(build_cnn(&crate::zoo::spec("Vgg16"), &cfg, true, 1).is_err());
    }
}
