//! Neural-network layer library and model zoo for PUMA.
//!
//! - [`spec`] — shape-level workload descriptors (Table 5 / Fig. 4);
//! - [`zoo`] — the benchmark networks, reconstructed from the paper's
//!   published parameter counts, plus graph builders;
//! - [`layers`] — MLP/LSTM/RNN/Boltzmann graph builders on the compiler's
//!   Fig. 7 interface;
//! - [`cnn`] — looped CNN code generation (control flow, sliding-window
//!   input reuse, §2.3.1/§3.2.3);
//! - [`perf`] — the analytic PUMA performance model for node-scale
//!   networks;
//! - [`train`]/[`data`]/[`accuracy`] — the pure-Rust trainer, synthetic
//!   dataset, and crossbar-accuracy evaluation behind Fig. 13;
//! - [`init`] — deterministic weight initialization.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod cnn;
pub mod data;
pub mod init;
pub mod layers;
pub mod perf;
pub mod spec;
pub mod train;
pub mod zoo;

pub use layers::WeightFactory;
pub use spec::{Activation, LayerSpec, WorkloadClass, WorkloadSpec};
