//! Inference accuracy under crossbar precision and write noise (Fig. 13).
//!
//! A trained MLP's weight matrices are programmed into [`AnalogMvmu`]s at a
//! given bits-per-cell setting with a given write-noise σN, and the test
//! set is classified through the analog path. Sweeping bits ∈ 1..=6 and
//! σN ∈ {0, 0.1, 0.2, 0.3} regenerates the figure.

use crate::data::Dataset;
use crate::train::TrainedMlp;
use puma_core::config::{MvmuConfig, NonIdealityConfig};
use puma_core::error::Result;
use puma_core::fixed::Fixed;
use puma_core::tensor::Matrix;
use puma_xbar::{AnalogMvmu, NoiseModel};

/// An MLP whose two weight matrices live in analog crossbars.
#[derive(Debug, Clone)]
pub struct AnalogMlp {
    layer1: Vec<AnalogMvmu>,
    layer2: Vec<AnalogMvmu>,
    b1: Vec<f32>,
    b2: Vec<f32>,
    hidden: usize,
    classes: usize,
    dim: usize,
    /// Read-side non-ideality applied per inference; the ideal default
    /// keeps [`AnalogMvmu::mvm`]'s exact dispatch.
    ni: NonIdealityConfig,
}

/// Programs matrix `m` into a row of crossbars (one column strip is enough
/// for the small Fig. 13 network; rows are tiled).
fn program_matrix(
    m: &Matrix,
    cfg: &MvmuConfig,
    noise: &NoiseModel,
    salt: u64,
) -> Result<Vec<AnalogMvmu>> {
    let dim = cfg.dim;
    assert!(m.cols() <= dim, "Fig. 13 network is one column strip wide");
    let row_tiles = m.rows().div_ceil(dim);
    let mut units = Vec::with_capacity(row_tiles);
    for t in 0..row_tiles {
        let rows = (m.rows() - t * dim).min(dim);
        let tile = m.tile(t * dim, 0, rows, m.cols()).quantize();
        let mut unit = AnalogMvmu::new(*cfg)?;
        let tile_noise = NoiseModel::new(noise.sigma, noise.seed.wrapping_add(salt + t as u64));
        unit.program(&tile, &tile_noise)?;
        units.push(unit);
    }
    Ok(units)
}

fn analog_mvm(
    units: &[AnalogMvmu],
    x: &[f32],
    dim: usize,
    out: usize,
    ni: &NonIdealityConfig,
    site_base: u64,
    time_index: u64,
) -> Result<Vec<f32>> {
    let degraded = !ni.is_ideal() || units.iter().any(|u| u.config().adc_bits_override.is_some());
    let mut acc = vec![0.0f32; out];
    for (t, unit) in units.iter().enumerate() {
        let mut chunk = vec![Fixed::ZERO; dim];
        for (i, slot) in chunk.iter_mut().enumerate() {
            let idx = t * dim + i;
            if idx < x.len() {
                *slot = Fixed::from_f32(x[idx]);
            }
        }
        let y = if degraded {
            unit.mvm_degraded(&chunk, ni, site_base + t as u64, time_index)?
        } else {
            unit.mvm(&chunk)?
        };
        for (a, v) in acc.iter_mut().zip(y.iter()) {
            *a += v.to_f32();
        }
    }
    Ok(acc)
}

impl AnalogMlp {
    /// Programs a trained network into crossbars with the given cell
    /// precision and write noise.
    ///
    /// # Errors
    ///
    /// Propagates crossbar configuration/programming failures.
    pub fn program(net: &TrainedMlp, cfg: &MvmuConfig, noise: &NoiseModel) -> Result<Self> {
        AnalogMlp::program_with(net, cfg, noise, &NonIdealityConfig::ideal())
    }

    /// [`AnalogMlp::program`] with read-side non-ideality: every
    /// inference additionally sees `ni`'s read noise, drift, and IR drop
    /// through [`AnalogMvmu::mvm_degraded`] (plus ADC output quantization
    /// when `cfg` narrows the converter).
    ///
    /// # Errors
    ///
    /// Propagates crossbar configuration/programming failures.
    pub fn program_with(
        net: &TrainedMlp,
        cfg: &MvmuConfig,
        noise: &NoiseModel,
        ni: &NonIdealityConfig,
    ) -> Result<Self> {
        cfg.validate()?;
        ni.validate()?;
        Ok(AnalogMlp {
            layer1: program_matrix(&net.w1, cfg, noise, 0x10)?,
            layer2: program_matrix(&net.w2, cfg, noise, 0x20)?,
            b1: net.b1.clone(),
            b2: net.b2.clone(),
            hidden: net.w1.cols(),
            classes: net.w2.cols(),
            dim: cfg.dim,
            ni: *ni,
        })
    }

    /// Classifies one sample through the analog path.
    ///
    /// # Errors
    ///
    /// Propagates crossbar evaluation failures.
    pub fn predict(&self, x: &[f32]) -> Result<usize> {
        self.predict_at(x, 0)
    }

    /// [`AnalogMlp::predict`] at an explicit non-ideality time index:
    /// read noise is resampled per index (cycle-to-cycle), while write
    /// noise and the per-cell drift factors stay fixed. Layer-1 and
    /// layer-2 crossbars use disjoint site keys (0x100/0x200 strips).
    ///
    /// # Errors
    ///
    /// Propagates crossbar evaluation failures.
    pub fn predict_at(&self, x: &[f32], time_index: u64) -> Result<usize> {
        let h_pre =
            analog_mvm(&self.layer1, x, self.dim, self.hidden, &self.ni, 0x100, time_index)?;
        let h: Vec<f32> =
            h_pre.iter().zip(&self.b1).map(|(v, b)| 1.0 / (1.0 + (-(v + b)).exp())).collect();
        let logits =
            analog_mvm(&self.layer2, &h, self.dim, self.classes, &self.ni, 0x200, time_index)?;
        Ok(logits
            .iter()
            .zip(&self.b2)
            .map(|(v, b)| v + b)
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty"))
    }

    /// Classification accuracy on a dataset. Each sample is classified at
    /// its index as the non-ideality time index, so read noise averages
    /// over realizations while the whole sweep stays deterministic.
    ///
    /// # Errors
    ///
    /// Propagates crossbar evaluation failures.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64> {
        let mut correct = 0usize;
        for (i, (x, &label)) in data.samples.iter().zip(&data.labels).enumerate() {
            if self.predict_at(x, i as u64)? == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len().max(1) as f64)
    }
}

/// One point of the Fig. 13 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// Bits per memristor cell.
    pub bits_per_cell: u32,
    /// Write-noise σN.
    pub sigma: f64,
    /// Measured classification accuracy.
    pub accuracy: f64,
}

/// Evaluates accuracy at one (precision, noise) point.
///
/// # Errors
///
/// Propagates crossbar failures.
pub fn accuracy_at(
    net: &TrainedMlp,
    test: &Dataset,
    bits_per_cell: u32,
    sigma: f64,
    seed: u64,
) -> Result<AccuracyPoint> {
    let cfg = MvmuConfig { dim: 128, bits_per_cell, ..MvmuConfig::default() };
    let analog = AnalogMlp::program(net, &cfg, &NoiseModel::new(sigma, seed))?;
    Ok(AccuracyPoint { bits_per_cell, sigma, accuracy: analog.accuracy(test)? })
}

/// Evaluates accuracy at one noise-frontier point: write noise, read-side
/// non-ideality, and whatever ADC width `cfg` carries. Deterministic for
/// a fixed `(cfg, noise, ni)` triple.
///
/// # Errors
///
/// Propagates crossbar failures.
pub fn frontier_accuracy(
    net: &TrainedMlp,
    test: &Dataset,
    cfg: &MvmuConfig,
    noise: &NoiseModel,
    ni: &NonIdealityConfig,
) -> Result<f64> {
    AnalogMlp::program_with(net, cfg, noise, ni)?.accuracy(test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{split, synthetic_clusters};
    use crate::train::{train_mlp, TrainConfig};

    fn setup() -> (TrainedMlp, Dataset) {
        // Overlapping clusters: learnable to ~98% but with thin margins,
        // so weight corruption is visible.
        let data = synthetic_clusters(16, 8, 40, 0.8, 11);
        let (train, test) = split(&data, 0.8);
        (train_mlp(&train, &TrainConfig::default()), test)
    }

    #[test]
    fn noiseless_analog_matches_digital_closely() {
        let (net, test) = setup();
        let digital = net.accuracy(&test);
        let p = accuracy_at(&net, &test, 2, 0.0, 1).unwrap();
        assert!((p.accuracy - digital).abs() < 0.05, "analog {} vs digital {digital}", p.accuracy);
        assert!(p.accuracy > 0.85);
    }

    #[test]
    fn two_bit_cells_tolerate_high_noise() {
        // The paper's conclusion: 2-bit cells work even at σN = 0.3.
        let (net, test) = setup();
        let p = accuracy_at(&net, &test, 2, 0.3, 2).unwrap();
        assert!(p.accuracy > 0.75, "2-bit @ σ=0.3 accuracy {}", p.accuracy);
    }

    #[test]
    fn six_bit_cells_collapse_under_noise() {
        let (net, test) = setup();
        let low = accuracy_at(&net, &test, 6, 0.3, 3).unwrap();
        let clean = accuracy_at(&net, &test, 6, 0.0, 3).unwrap();
        assert!(
            low.accuracy < clean.accuracy - 0.15,
            "6-bit: noisy {} vs clean {}",
            low.accuracy,
            clean.accuracy
        );
    }

    #[test]
    fn noise_degradation_grows_with_bits() {
        let (net, test) = setup();
        let acc2 = accuracy_at(&net, &test, 2, 0.2, 4).unwrap().accuracy;
        let acc6 = accuracy_at(&net, &test, 6, 0.2, 4).unwrap().accuracy;
        assert!(acc2 > acc6, "2-bit {acc2} should beat 6-bit {acc6} at σ=0.2");
    }

    #[test]
    fn frontier_accuracy_replays_bit_exactly() {
        let (net, test) = setup();
        let cfg = MvmuConfig { dim: 128, ..MvmuConfig::default() };
        let noise = NoiseModel::new(0.2, 5);
        let ni = NonIdealityConfig { read_sigma: 0.2, seed: 5, ..NonIdealityConfig::ideal() };
        let a = frontier_accuracy(&net, &test, &cfg, &noise, &ni).unwrap();
        let b = frontier_accuracy(&net, &test, &cfg, &noise, &ni).unwrap();
        assert_eq!(a, b, "fixed (config, seed) must replay bit-exactly");
        // The ideal point reproduces the plain analog path.
        let ideal = frontier_accuracy(
            &net,
            &test,
            &cfg,
            &NoiseModel::noiseless(),
            &NonIdealityConfig::ideal(),
        )
        .unwrap();
        let plain = accuracy_at(&net, &test, 2, 0.0, 1).unwrap().accuracy;
        assert_eq!(ideal, plain);
    }

    #[test]
    fn narrow_adc_degrades_accuracy() {
        let (net, test) = setup();
        let noise = NoiseModel::noiseless();
        let ni = NonIdealityConfig::ideal();
        let full = MvmuConfig { dim: 128, ..MvmuConfig::default() };
        let narrow = MvmuConfig { adc_bits_override: Some(2), ..full };
        let collapsed = MvmuConfig { adc_bits_override: Some(1), ..full };
        let acc_full = frontier_accuracy(&net, &test, &full, &noise, &ni).unwrap();
        let acc_narrow = frontier_accuracy(&net, &test, &narrow, &noise, &ni).unwrap();
        let acc_collapsed = frontier_accuracy(&net, &test, &collapsed, &noise, &ni).unwrap();
        assert!(
            acc_narrow < acc_full - 0.05,
            "2-bit ADC {acc_narrow} should lose accuracy vs full {acc_full}"
        );
        assert!(acc_collapsed < 0.5, "1-bit ADC should collapse, got {acc_collapsed}");
    }
}
