//! Deterministic weight initialization.
//!
//! Benchmark networks get architecture-faithful synthetic weights (the
//! performance experiments depend only on shapes); the Fig. 13 accuracy
//! experiment trains real weights with [`crate::train`]. A simple
//! SplitMix64-based generator keeps everything reproducible without
//! threading RNG state through the builders.

use puma_core::tensor::Matrix;

/// Deterministic pseudo-random stream.
#[derive(Debug, Clone)]
pub struct WeightRng {
    state: u64,
}

impl WeightRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        WeightRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[-1, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Top 24 bits scaled to [0, 1), then mapped to [-1, 1).
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
    }

    /// Xavier/Glorot-style uniform matrix: `U(±sqrt(6/(fan_in+fan_out)))`.
    pub fn xavier_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let mut vals = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            vals.push(self.uniform() * limit);
        }
        Matrix::from_vec(rows, cols, vals).expect("nonzero dims")
    }

    /// Small uniform bias vector.
    pub fn bias(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.uniform() * 0.05).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = WeightRng::new(7);
        let mut b = WeightRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = WeightRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = WeightRng::new(1);
        for _ in 0..1000 {
            let v = rng.uniform();
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn xavier_matrix_respects_limit() {
        let mut rng = WeightRng::new(2);
        let m = rng.xavier_matrix(64, 64);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
        // Not all zero.
        assert!(m.max_abs() > 1e-4);
    }

    #[test]
    fn bias_is_small() {
        let mut rng = WeightRng::new(3);
        assert!(rng.bias(100).iter().all(|v| v.abs() <= 0.05));
    }
}
