//! Workload descriptors: the shape-level facts about each benchmark
//! network (Table 5 of the paper), used by the analytic platform models,
//! Table 1's characterization, and the graph builders.

use serde::{Deserialize, Serialize};

/// Activation applied by a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No activation (linear output layer).
    None,
    /// ReLU.
    Relu,
    /// Sigmoid (transcendental).
    Sigmoid,
    /// Tanh (transcendental).
    Tanh,
}

/// One layer of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected layer: `out = act(W·in + b)`.
    Fc {
        /// Input width.
        input: usize,
        /// Output width.
        output: usize,
        /// Activation.
        act: Activation,
    },
    /// LSTM layer (four gates; optionally projected output).
    Lstm {
        /// Input width.
        input: usize,
        /// Cell count.
        hidden: usize,
        /// Projection width (None = hidden).
        projection: Option<usize>,
    },
    /// Vanilla RNN layer: `h = act(W·x + U·h)`.
    Rnn {
        /// Input width.
        input: usize,
        /// Hidden width.
        hidden: usize,
    },
    /// 2D convolution over `input` channels producing `output` channels
    /// with `kernel`×`kernel` filters at stride `stride` on a
    /// `height`×`width` input.
    Conv {
        /// Input channels.
        input: usize,
        /// Output channels.
        output: usize,
        /// Kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
    },
    /// Max pooling with `window`×`window` non-overlapping windows.
    Pool {
        /// Channels.
        channels: usize,
        /// Window side (= stride).
        window: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
    },
}

impl LayerSpec {
    /// Weight parameters in this layer.
    pub fn params(&self) -> u64 {
        match *self {
            LayerSpec::Fc { input, output, .. } => (input * output + output) as u64,
            LayerSpec::Lstm { input, hidden, projection } => {
                let proj = projection.unwrap_or(hidden);
                // Four gates over [x, h_proj], plus the projection matrix.
                let gates = 4 * (input + proj) * hidden + 4 * hidden;
                let proj_w = if projection.is_some() { hidden * proj } else { 0 };
                (gates + proj_w) as u64
            }
            LayerSpec::Rnn { input, hidden } => ((input + hidden) * hidden + hidden) as u64,
            LayerSpec::Conv { input, output, kernel, .. } => {
                (input * output * kernel * kernel + output) as u64
            }
            LayerSpec::Pool { .. } => 0,
        }
    }

    /// Multiply-accumulate operations per inference step (one input for
    /// FC/conv; one time step for recurrent layers).
    pub fn macs(&self) -> u64 {
        match *self {
            LayerSpec::Fc { input, output, .. } => (input * output) as u64,
            LayerSpec::Lstm { input, hidden, projection } => {
                let proj = projection.unwrap_or(hidden);
                let gates = 4 * (input + proj) * hidden;
                let proj_w = if projection.is_some() { hidden * proj } else { 0 };
                (gates + proj_w) as u64
            }
            LayerSpec::Rnn { input, hidden } => ((input + hidden) * hidden) as u64,
            LayerSpec::Conv { input, output, kernel, stride, height, width } => {
                let (h_out, w_out) = conv_output(height, width, kernel, stride);
                (h_out * w_out * input * output * kernel * kernel) as u64
            }
            LayerSpec::Pool { .. } => 0,
        }
    }

    /// Output activation element count per step.
    pub fn output_elems(&self) -> u64 {
        match *self {
            LayerSpec::Fc { output, .. } => output as u64,
            LayerSpec::Lstm { hidden, projection, .. } => projection.unwrap_or(hidden) as u64,
            LayerSpec::Rnn { hidden, .. } => hidden as u64,
            LayerSpec::Conv { output, kernel, stride, height, width, .. } => {
                let (h, w) = conv_output(height, width, kernel, stride);
                (h * w * output) as u64
            }
            LayerSpec::Pool { channels, window, height, width } => {
                ((height / window) * (width / window) * channels) as u64
            }
        }
    }

    /// Input activation element count per step.
    pub fn input_elems(&self) -> u64 {
        match *self {
            LayerSpec::Fc { input, .. } => input as u64,
            LayerSpec::Lstm { input, .. } => input as u64,
            LayerSpec::Rnn { input, .. } => input as u64,
            LayerSpec::Conv { input, height, width, .. } => (input * height * width) as u64,
            LayerSpec::Pool { channels, height, width, .. } => (channels * height * width) as u64,
        }
    }

    /// True for layers whose weights are reused across positions within one
    /// inference (convolutions).
    pub fn has_input_reuse(&self) -> bool {
        matches!(self, LayerSpec::Conv { .. })
    }
}

/// Output spatial dims of a (valid-padding) convolution.
pub fn conv_output(height: usize, width: usize, kernel: usize, stride: usize) -> (usize, usize) {
    ((height - kernel) / stride + 1, (width - kernel) / stride + 1)
}

/// Workload class, mirroring Table 5's "DNN Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Multi-layer perceptron.
    Mlp,
    /// Deep LSTM (many layers, moderate width).
    DeepLstm,
    /// Wide LSTM (few layers, very wide).
    WideLstm,
    /// Convolutional network.
    Cnn,
    /// Vanilla recurrent network.
    Rnn,
    /// (Restricted) Boltzmann machine.
    Boltzmann,
}

/// A full workload: layers, sequence length, and metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name (Table 5).
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Layers in order.
    pub layers: Vec<LayerSpec>,
    /// Sequence length (1 for feed-forward nets; 50 for Table 5 LSTMs).
    pub seq_len: usize,
}

impl WorkloadSpec {
    /// Total weight parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).sum()
    }

    /// Total MACs for one inference (all sequence steps).
    pub fn total_macs(&self) -> u64 {
        let per_step: u64 = self.layers.iter().map(LayerSpec::macs).sum();
        per_step * self.seq_len as u64
    }

    /// Total activation elements moved between layers for one inference.
    pub fn total_activation_elems(&self) -> u64 {
        let per_step: u64 = self.layers.iter().map(|l| l.input_elems() + l.output_elems()).sum();
        per_step * self.seq_len as u64
    }

    /// Weight bytes at 16-bit precision.
    pub fn weight_bytes(&self) -> u64 {
        self.params() * 2
    }

    /// Arithmetic intensity proxy: MACs per weight parameter. ≈1 for
    /// MLPs (no reuse), ≈seq_len for LSTMs, large for CNNs.
    pub fn macs_per_param(&self) -> f64 {
        self.total_macs() as f64 / self.params().max(1) as f64
    }

    /// Whether any layer performs transcendental activations.
    pub fn uses_transcendentals(&self) -> bool {
        self.layers.iter().any(|l| {
            matches!(
                l,
                LayerSpec::Lstm { .. }
                    | LayerSpec::Rnn { .. }
                    | LayerSpec::Fc { act: Activation::Sigmoid | Activation::Tanh, .. }
            )
        })
    }

    /// Number of layers with weights.
    pub fn weight_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.params() > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_formula() {
        assert_eq!(conv_output(28, 28, 5, 1), (24, 24));
        assert_eq!(conv_output(224, 224, 3, 1), (222, 222));
        assert_eq!(conv_output(8, 8, 2, 2), (4, 4));
    }

    #[test]
    fn fc_params_include_bias() {
        let fc = LayerSpec::Fc { input: 10, output: 20, act: Activation::Relu };
        assert_eq!(fc.params(), 220);
        assert_eq!(fc.macs(), 200);
    }

    #[test]
    fn lstm_params_count_four_gates() {
        let l = LayerSpec::Lstm { input: 8, hidden: 16, projection: None };
        assert_eq!(l.params(), 4 * (8 + 16) * 16 + 4 * 16);
        let p = LayerSpec::Lstm { input: 8, hidden: 16, projection: Some(4) };
        assert_eq!(p.params(), (4 * (8 + 4) * 16 + 4 * 16 + 16 * 4) as u64);
    }

    #[test]
    fn conv_macs_scale_with_positions() {
        let c =
            LayerSpec::Conv { input: 3, output: 8, kernel: 3, stride: 1, height: 10, width: 10 };
        assert_eq!(c.macs(), 8 * 8 * 3 * 8 * 9);
        assert!(c.has_input_reuse());
    }

    #[test]
    fn workload_aggregates_over_sequence() {
        let w = WorkloadSpec {
            name: "t".into(),
            class: WorkloadClass::DeepLstm,
            layers: vec![LayerSpec::Lstm { input: 8, hidden: 8, projection: None }],
            seq_len: 10,
        };
        assert_eq!(w.total_macs(), 10 * 4 * 16 * 8);
        assert!(w.macs_per_param() > 5.0);
        assert!(w.uses_transcendentals());
    }

    #[test]
    fn pool_has_no_params() {
        let p = LayerSpec::Pool { channels: 4, window: 2, height: 8, width: 8 };
        assert_eq!(p.params(), 0);
        assert_eq!(p.output_elems(), 4 * 16);
    }
}
