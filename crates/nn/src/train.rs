//! A small pure-Rust MLP trainer (SGD with momentum) for the Fig. 13
//! accuracy experiment.
//!
//! The performance experiments use synthetic weights, but inference
//! *accuracy* under crossbar quantization and write noise (Fig. 13) needs a
//! network that has actually learned something. This trainer fits a
//! two-layer sigmoid MLP on the synthetic cluster task from
//! [`crate::data`]; the trained weights are then programmed into
//! [`puma_xbar::AnalogMvmu`]s at each precision/noise point.

use crate::data::Dataset;
use crate::init::WeightRng;
use puma_core::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A trained two-layer MLP: `logits = W2·sigmoid(W1·x + b1) + b2`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedMlp {
    /// First layer weights (features × hidden).
    pub w1: Matrix,
    /// First layer bias.
    pub b1: Vec<f32>,
    /// Second layer weights (hidden × classes).
    pub w2: Matrix,
    /// Second layer bias.
    pub b2: Vec<f32>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl TrainedMlp {
    /// Forward pass returning class logits.
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        let h_pre = self.w1.mvm(x).expect("feature width");
        let h: Vec<f32> = h_pre.iter().zip(&self.b1).map(|(v, b)| sigmoid(v + b)).collect();
        let mut out = self.w2.mvm(&h).expect("hidden width");
        for (o, b) in out.iter_mut().zip(&self.b2) {
            *o += b;
        }
        out
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let logits = self.logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("nonempty logits")
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            data.samples.iter().zip(&data.labels).filter(|(s, &l)| self.predict(s) == l).count();
        correct as f64 / data.len() as f64
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.w1.cols()
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { hidden: 32, epochs: 60, learning_rate: 0.1, seed: 42 }
    }
}

/// Trains the MLP with plain SGD and a softmax cross-entropy loss.
pub fn train_mlp(data: &Dataset, cfg: &TrainConfig) -> TrainedMlp {
    let mut rng = WeightRng::new(cfg.seed);
    let mut net = TrainedMlp {
        w1: rng.xavier_matrix(data.features, cfg.hidden),
        b1: vec![0.0; cfg.hidden],
        w2: rng.xavier_matrix(cfg.hidden, data.classes),
        b2: vec![0.0; data.classes],
    };
    let lr = cfg.learning_rate;
    for _epoch in 0..cfg.epochs {
        for (x, &label) in data.samples.iter().zip(&data.labels) {
            // Forward.
            let h_pre = net.w1.mvm(x).expect("shape");
            let h: Vec<f32> = h_pre.iter().zip(&net.b1).map(|(v, b)| sigmoid(v + b)).collect();
            let mut logits = net.w2.mvm(&h).expect("shape");
            for (o, b) in logits.iter_mut().zip(&net.b2) {
                *o += b;
            }
            // Softmax.
            let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let exps: Vec<f32> = logits.iter().map(|v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
            // Backward: d_logits = probs - onehot.
            let d_logits: Vec<f32> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| p - if i == label { 1.0 } else { 0.0 })
                .collect();
            // Grad w2 (h × classes) and hidden error.
            let mut d_h = vec![0.0f32; net.w2.rows()];
            for r in 0..net.w2.rows() {
                for (c, &dl) in d_logits.iter().enumerate().take(net.w2.cols()) {
                    let g = h[r] * dl;
                    let w = net.w2.get(r, c);
                    d_h[r] += w * dl;
                    net.w2.set(r, c, w - lr * g);
                }
            }
            for (b, d) in net.b2.iter_mut().zip(&d_logits) {
                *b -= lr * d;
            }
            // Hidden sigmoid derivative.
            let d_pre: Vec<f32> = d_h.iter().zip(&h).map(|(d, &hv)| d * hv * (1.0 - hv)).collect();
            for (r, &xv) in x.iter().enumerate().take(net.w1.rows()) {
                if xv == 0.0 {
                    continue;
                }
                for (c, &dp) in d_pre.iter().enumerate().take(net.w1.cols()) {
                    let w = net.w1.get(r, c);
                    net.w1.set(r, c, w - lr * xv * dp);
                }
            }
            for (b, d) in net.b1.iter_mut().zip(&d_pre) {
                *b -= lr * d;
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{split, synthetic_clusters};

    #[test]
    fn training_reaches_high_accuracy() {
        let data = synthetic_clusters(16, 4, 40, 0.15, 11);
        let (train, test) = split(&data, 0.8);
        let net = train_mlp(&train, &TrainConfig::default());
        let acc = net.accuracy(&test);
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn untrained_network_is_near_chance() {
        let data = synthetic_clusters(16, 4, 40, 0.15, 11);
        let net = train_mlp(&data, &TrainConfig { epochs: 0, ..TrainConfig::default() });
        let acc = net.accuracy(&data);
        assert!(acc < 0.6, "untrained accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic_clusters(8, 3, 20, 0.1, 5);
        let a = train_mlp(&data, &TrainConfig::default());
        let b = train_mlp(&data, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn predict_picks_argmax() {
        let net = TrainedMlp {
            w1: Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 }),
            b1: vec![0.0; 2],
            w2: Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 }),
            b2: vec![0.0, 10.0],
        };
        assert_eq!(net.predict(&[5.0, 0.0]), 1, "large bias dominates");
        assert_eq!(net.hidden(), 2);
    }

    #[test]
    fn weights_stay_in_fixed_point_range() {
        // Q4.12 holds [-8, 8); training on normalized data must not blow up.
        let data = synthetic_clusters(16, 4, 40, 0.15, 11);
        let net = train_mlp(&data, &TrainConfig::default());
        assert!(net.w1.max_abs() < 8.0);
        assert!(net.w2.max_abs() < 8.0);
    }
}
