//! Analytic PUMA performance/energy model.
//!
//! The event-driven simulator (`puma-sim`) is exact but node-scale models
//! (VGG's 15 GMACs, BigLSTM's 850M weights) make full event simulation
//! slow; the paper's own evaluation pipelines layers spatially, which this
//! model captures in closed form. The model is built from the *same*
//! [`puma_core::timing::TimingModel`] constants as the simulator and is
//! cross-checked against it on medium workloads (see `tests/` and
//! EXPERIMENTS.md).
//!
//! Modelled effects:
//! - pipelined MVMU throughput (initiation interval) vs fill latency;
//! - per-layer spatial pipelining across positions/time steps (§4.1.2);
//! - activation data movement through shared memory, with the input-reuse
//!   discount of MVM input shuffling for convolutions (§3.2.3);
//! - partial-sum reduction traffic for matrices spanning many crossbars,
//!   including the NoC share when a matrix spans multiple tiles;
//! - VFU/transcendental time for activations (temporal SIMD).

use crate::spec::{Activation, LayerSpec, WorkloadSpec};
use puma_core::config::NodeConfig;
use puma_core::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Sliding-window positions served by one replica of a conv layer's
/// crossbars; more positions trigger replication (calibrated so the VGG
/// latency edge over GPUs lands near the paper's ~3x).
pub const CONV_POSITIONS_PER_REPLICA: u64 = 1024;

/// Per-run performance estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PumaEstimate {
    /// End-to-end latency in nanoseconds.
    pub latency_ns: f64,
    /// Total energy in nanojoules.
    pub energy_nj: f64,
    /// MVM instructions issued (per-MVMU activations).
    pub mvm_activations: u64,
    /// Crossbars (MVMUs) occupied by weights.
    pub mvmus_used: u64,
    /// Words moved through shared memories.
    pub shared_words: u64,
    /// Words moved over the on-chip network.
    pub network_words: u64,
    /// Pipeline fill time (ns): one pass of MVM latencies through the
    /// layer pipeline.
    pub fill_ns: f64,
    /// Steady-state time per sequence step / inference in the pipeline (ns).
    pub steady_ns: f64,
}

impl PumaEstimate {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ns * 1e-6
    }

    /// Energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_nj * 1e-6
    }
}

/// Per-layer work quantities at crossbar granularity.
#[derive(Debug, Clone, Copy)]
struct LayerWork {
    /// Weight-tile grid for the layer's (aggregate) matrix.
    row_tiles: u64,
    col_tiles: u64,
    /// MVM issues per step (positions × grid).
    mvm_issues: u64,
    /// Positions (sliding windows) per step.
    positions: u64,
    /// Words loaded from shared memory per step.
    load_words: u64,
    /// Words stored per step.
    store_words: u64,
    /// Vector-op elements per step (linear).
    vector_elems: u64,
    /// Transcendental elements per step.
    transcendental_elems: u64,
}

fn layer_work(layer: &LayerSpec, dim: u64, input_shuffling: bool) -> LayerWork {
    match *layer {
        LayerSpec::Fc { input, output, act } => {
            let rt = (input as u64).div_ceil(dim);
            let ct = (output as u64).div_ceil(dim);
            LayerWork {
                row_tiles: rt,
                col_tiles: ct,
                mvm_issues: rt * ct,
                positions: 1,
                load_words: input as u64 + (rt - 1) * output as u64,
                store_words: output as u64,
                vector_elems: output as u64, // bias add
                transcendental_elems: if matches!(act, Activation::Sigmoid | Activation::Tanh) {
                    output as u64
                } else {
                    0
                },
            }
        }
        LayerSpec::Lstm { input, hidden, projection } => {
            let proj = projection.unwrap_or(hidden) as u64;
            let (input, hidden) = (input as u64, hidden as u64);
            // Four gates: (input + proj) × hidden each, plus projection.
            let gate_rt = input.div_ceil(dim) + proj.div_ceil(dim);
            let gate_ct = hidden.div_ceil(dim);
            let proj_rt = hidden.div_ceil(dim);
            let proj_ct = if projection.is_some() { proj.div_ceil(dim) } else { 0 };
            let mvm_issues = 4 * gate_rt * gate_ct + proj_rt * proj_ct;
            LayerWork {
                row_tiles: gate_rt,
                col_tiles: 4 * gate_ct + proj_ct,
                mvm_issues,
                positions: 1,
                load_words: 4 * (input + proj) + 4 * (gate_rt - 1) * hidden + hidden,
                store_words: proj + hidden,            // h and c state
                vector_elems: 4 * hidden + 3 * hidden, // bias adds + state mixing
                transcendental_elems: 5 * hidden,      // 4 gates + tanh(c)
            }
        }
        LayerSpec::Rnn { input, hidden } => {
            let (input, hidden) = (input as u64, hidden as u64);
            let rt = input.div_ceil(dim) + hidden.div_ceil(dim);
            let ct = hidden.div_ceil(dim);
            LayerWork {
                row_tiles: rt,
                col_tiles: ct,
                mvm_issues: rt * ct,
                positions: 1,
                load_words: input + hidden + (rt - 1) * hidden,
                store_words: hidden,
                vector_elems: hidden,
                transcendental_elems: hidden,
            }
        }
        LayerSpec::Conv { input, output, kernel, stride, height, width } => {
            let (h_out, w_out) = crate::spec::conv_output(height, width, kernel, stride);
            let positions = (h_out * w_out) as u64;
            let window = (input * kernel * kernel) as u64;
            let rt = window.div_ceil(dim);
            let ct = (output as u64).div_ceil(dim);
            // Conv kernels are tiny next to their MAC counts, so the
            // compiler replicates each conv layer's crossbars to process
            // positions in parallel until the pipeline stage handles at
            // most CONV_POSITIONS_PER_REPLICA positions (weight reuse
            // turned into spatial parallelism — the CNN mapping ISAAC and
            // PUMA share). Replication multiplies crossbar count, not
            // energy.
            let replicas = positions.div_ceil(CONV_POSITIONS_PER_REPLICA).max(1);
            // Input shuffling (§3.2.3) reloads only the new window columns
            // for unit-stride interior positions.
            let words_per_pos =
                if input_shuffling { (input * kernel * stride) as u64 } else { window };
            LayerWork {
                row_tiles: rt,
                col_tiles: ct * replicas,
                mvm_issues: positions * rt * ct,
                positions: positions.div_ceil(replicas),
                load_words: positions * (words_per_pos + (rt - 1) * output as u64),
                store_words: positions * output as u64,
                vector_elems: positions * output as u64,
                transcendental_elems: 0,
            }
        }
        LayerSpec::Pool { channels, window, height, width } => {
            let positions = ((height / window) * (width / window)) as u64;
            let in_words = positions * (channels * window * window) as u64;
            LayerWork {
                row_tiles: 0,
                col_tiles: 0,
                mvm_issues: 0,
                positions,
                load_words: in_words,
                store_words: positions * channels as u64,
                vector_elems: in_words, // max-tree comparisons
                transcendental_elems: 0,
            }
        }
    }
}

/// Estimates PUMA latency/energy for one inference of a workload.
pub fn estimate(spec: &WorkloadSpec, cfg: &NodeConfig, input_shuffling: bool) -> PumaEstimate {
    let timing = TimingModel::new(*cfg);
    let dim = cfg.tile.core.mvmu.dim as u64;
    let mvmus_per_tile = (cfg.tile.cores_per_tile * cfg.tile.core.mvmus_per_core) as u64;

    let mut total = PumaEstimate::default();
    let mut step_times: Vec<f64> = Vec::new();
    let mut fill_time = 0.0;

    for layer in &spec.layers {
        let w = layer_work(layer, dim, input_shuffling);
        total.mvmus_used += w.row_tiles * w.col_tiles;

        // --- per-step energy ------------------------------------------
        let mvm_e = timing.mvm_energy_nj() * w.mvm_issues as f64;
        let mem_e = if w.load_words + w.store_words > 0 {
            // Amortized per-word energy at a full-bus transfer.
            let bus = cfg.tile.bus_words_per_cycle() as u64;
            let per_burst = timing.shared_memory_energy_nj(bus as usize);
            ((w.load_words + w.store_words) as f64 / bus as f64) * per_burst
        } else {
            0.0
        };
        let vfu_e = timing.vfu_energy_nj(w.vector_elems as usize);
        let trans_e = timing.transcendental_energy_nj(w.transcendental_elems as usize);
        // NoC share: partial-sum traffic crossing tiles when the layer's
        // crossbars span more than one tile.
        let tiles_spanned = (w.row_tiles * w.col_tiles).div_ceil(mvmus_per_tile).max(1);
        let cross_fraction = 1.0 - 1.0 / tiles_spanned as f64;
        let partial_words = w.positions * (w.row_tiles.saturating_sub(1)) * dim;
        let noc_words = (partial_words as f64 * cross_fraction) as u64;
        let noc_e = if noc_words > 0 {
            timing.send_energy_nj(dim as usize, 0, 2) * (noc_words as f64 / dim as f64)
        } else {
            0.0
        };
        // Fetch/decode for every instruction (MVMs + one vector/mem op per
        // chunk moved).
        let instr_count = w.mvm_issues
            + (w.load_words + w.store_words).div_ceil(dim)
            + w.vector_elems.div_ceil(dim)
            + w.transcendental_elems.div_ceil(dim);
        let fetch_e = timing.fetch_decode_energy_nj() * instr_count as f64;
        let step_e = mvm_e + mem_e + vfu_e + trans_e + noc_e + fetch_e;
        total.energy_nj += step_e * spec.seq_len as f64;
        total.mvm_activations += w.mvm_issues * spec.seq_len as u64;
        total.shared_words += (w.load_words + w.store_words) * spec.seq_len as u64;
        total.network_words += noc_words * spec.seq_len as u64;

        // --- per-step time --------------------------------------------
        // All of a position's row/col tiles run in parallel on distinct
        // MVMUs; consecutive positions pipeline at the initiation interval.
        let mvm_time = if w.mvm_issues > 0 {
            w.positions as f64 * timing.mvm_initiation_interval() as f64
        } else {
            0.0
        };
        // Data movement serializes on the tile bus.
        let mem_time = (w.load_words + w.store_words) as f64
            / cfg.tile.bus_words_per_cycle() as f64
            + if w.positions > 0 {
                w.positions as f64 * puma_core::timing::EDRAM_ACCESS_CYCLES as f64
            } else {
                0.0
            };
        // Vector time on the (distributed) VFUs: one VFU per core holding
        // the layer's tiles.
        let cores =
            (w.row_tiles * w.col_tiles).div_ceil(cfg.tile.core.mvmus_per_core as u64).max(1);
        let vfu_time = timing.vfu_cycles((w.vector_elems / cores).max(1) as usize) as f64
            + timing.transcendental_cycles((w.transcendental_elems / cores).max(1) as usize) as f64;
        let step_time = mvm_time.max(mem_time).max(vfu_time);
        step_times.push(step_time);
        fill_time += timing.mvm_latency() as f64;
    }

    // Spatial pipelining (§4.1.2): layers overlap across sequence steps or
    // sliding-window positions; total ≈ pipeline fill + steps × bottleneck
    // stage. MLPs have neither (batch-1, one position): their layers
    // serialize — exactly why the paper's Fig. 11(b) shows MLPs as PUMA's
    // weakest latency case (§7.2).
    let pipelined = spec.seq_len > 1
        || spec.layers.iter().any(|l| matches!(l, LayerSpec::Conv { .. } | LayerSpec::Pool { .. }));
    if pipelined {
        let bottleneck = step_times.iter().copied().fold(0.0, f64::max);
        total.fill_ns = fill_time;
        total.steady_ns = bottleneck * spec.seq_len as f64;
    } else {
        total.fill_ns = fill_time;
        total.steady_ns = step_times.iter().sum();
    }
    total.latency_ns = total.fill_ns + total.steady_ns;
    total
}

/// Batched PUMA inference: consecutive inferences pipeline through the
/// spatial fabric (crossbars never re-load weights), so batch `B` costs one
/// fill plus `B` steady intervals, and energy scales linearly — "PUMA's
/// efficiency remains constant across batch sizes" (§7.3).
pub fn estimate_batch(
    spec: &WorkloadSpec,
    cfg: &NodeConfig,
    input_shuffling: bool,
    batch: usize,
) -> PumaEstimate {
    let one = estimate(spec, cfg, input_shuffling);
    let b = batch.max(1) as f64;
    PumaEstimate {
        latency_ns: one.fill_ns + b * one.steady_ns,
        energy_nj: one.energy_nj * b,
        mvm_activations: one.mvm_activations * batch as u64,
        mvmus_used: one.mvmus_used,
        shared_words: one.shared_words * batch as u64,
        network_words: one.network_words * batch as u64,
        fill_ns: one.fill_ns,
        steady_ns: one.steady_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::spec;

    fn default_estimate(name: &str) -> PumaEstimate {
        estimate(&spec(name), &NodeConfig::default(), true)
    }

    #[test]
    fn estimates_are_positive_for_all_workloads() {
        for s in crate::zoo::all_specs() {
            let e = estimate(&s, &NodeConfig::default(), true);
            assert!(e.latency_ns > 0.0, "{}", s.name);
            assert!(e.energy_nj > 0.0, "{}", s.name);
            assert!(e.mvmus_used > 0, "{}", s.name);
        }
    }

    #[test]
    fn bigger_models_use_more_crossbars() {
        assert!(default_estimate("BigLSTM").mvmus_used > default_estimate("MLPL4").mvmus_used);
        assert!(default_estimate("MLPL5").mvmus_used > default_estimate("MLPL4").mvmus_used);
    }

    #[test]
    fn vgg_dominates_in_mvm_activations() {
        // CNNs reuse weights across positions: many activations per MVMU.
        let vgg = default_estimate("Vgg16");
        let mlp = default_estimate("MLPL5");
        assert!(vgg.mvm_activations > 100 * mlp.mvm_activations);
    }

    #[test]
    fn input_shuffling_reduces_memory_traffic_for_cnns() {
        let s = spec("Vgg16");
        let with = estimate(&s, &NodeConfig::default(), true);
        let without = estimate(&s, &NodeConfig::default(), false);
        assert!(with.shared_words < without.shared_words);
        assert!(with.energy_nj < without.energy_nj);
        // Paper Table 8: shuffling saves ~15% of VGG energy; accept a band.
        let ratio = with.energy_nj / without.energy_nj;
        assert!((0.6..1.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffling_does_not_affect_mlps() {
        let s = spec("MLPL4");
        let with = estimate(&s, &NodeConfig::default(), true);
        let without = estimate(&s, &NodeConfig::default(), false);
        assert_eq!(with, without);
    }

    #[test]
    fn deep_lstm_latency_scales_with_sequence() {
        let mut s = spec("NMTL3");
        let short = estimate(&s, &NodeConfig::default(), true);
        s.seq_len = 100;
        let long = estimate(&s, &NodeConfig::default(), true);
        assert!(long.latency_ns > 1.8 * short.latency_ns);
    }
}
