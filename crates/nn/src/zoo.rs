//! The benchmark model zoo: the Table 5 evaluation networks and the Fig. 4
//! instruction-mix workloads.
//!
//! Layer dimensions for the Table 5 networks are reconstructed from the
//! published parameter counts (the paper lists totals, not shapes); the
//! reconstructions land within a few percent of every published count —
//! see the unit tests at the bottom of this module.

use crate::layers::{self, WeightFactory};
use crate::spec::{Activation, LayerSpec, WorkloadClass, WorkloadSpec};
use puma_compiler::graph::Model;
use puma_core::error::Result;

/// Table 5 benchmark names.
pub const TABLE5_NAMES: [&str; 8] =
    ["MLPL4", "MLPL5", "NMTL3", "NMTL5", "BigLSTM", "LSTM-2048", "Vgg16", "Vgg19"];

/// Builds the spec of a Table 5 or Fig. 4 workload by name.
///
/// # Panics
///
/// Panics on unknown names; use [`all_specs`] to enumerate valid ones.
pub fn spec(name: &str) -> WorkloadSpec {
    match name {
        // ---- Table 5 ---------------------------------------------------
        "MLPL4" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Mlp,
            layers: (0..4)
                .map(|_| LayerSpec::Fc { input: 1120, output: 1120, act: Activation::Sigmoid })
                .collect(),
            seq_len: 1,
        },
        "MLPL5" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Mlp,
            layers: (0..5)
                .map(|_| LayerSpec::Fc { input: 2048, output: 2048, act: Activation::Sigmoid })
                .collect(),
            seq_len: 1,
        },
        "NMTL3" => nmt(name, 3),
        "NMTL5" => nmt(name, 5),
        "BigLSTM" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::WideLstm,
            layers: vec![
                LayerSpec::Lstm { input: 1024, hidden: 8192, projection: Some(1024) },
                LayerSpec::Lstm { input: 1024, hidden: 8192, projection: Some(1024) },
                LayerSpec::Fc { input: 1024, output: 688_000, act: Activation::None },
            ],
            seq_len: 50,
        },
        "LSTM-2048" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::WideLstm,
            layers: vec![
                LayerSpec::Lstm { input: 2048, hidden: 8192, projection: Some(2048) },
                LayerSpec::Fc { input: 2048, output: 196_000, act: Activation::None },
            ],
            seq_len: 50,
        },
        "Vgg16" => vgg(name, &[2, 2, 3, 3, 3]),
        "Vgg19" => vgg(name, &[2, 2, 4, 4, 4]),
        // ---- Fig. 4 workloads ------------------------------------------
        "Lenet5" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Cnn,
            layers: vec![
                LayerSpec::Conv {
                    input: 1,
                    output: 6,
                    kernel: 5,
                    stride: 1,
                    height: 28,
                    width: 28,
                },
                LayerSpec::Pool { channels: 6, window: 2, height: 24, width: 24 },
                LayerSpec::Conv {
                    input: 6,
                    output: 16,
                    kernel: 5,
                    stride: 1,
                    height: 12,
                    width: 12,
                },
                LayerSpec::Pool { channels: 16, window: 2, height: 8, width: 8 },
                LayerSpec::Fc { input: 256, output: 120, act: Activation::Relu },
                LayerSpec::Fc { input: 120, output: 84, act: Activation::Relu },
                LayerSpec::Fc { input: 84, output: 10, act: Activation::None },
            ],
            seq_len: 1,
        },
        "MLP-64-150-150-14" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Mlp,
            layers: vec![
                LayerSpec::Fc { input: 64, output: 150, act: Activation::Sigmoid },
                LayerSpec::Fc { input: 150, output: 150, act: Activation::Sigmoid },
                LayerSpec::Fc { input: 150, output: 14, act: Activation::Sigmoid },
            ],
            seq_len: 1,
        },
        "LSTM-26-120-61" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::DeepLstm,
            layers: vec![
                LayerSpec::Lstm { input: 26, hidden: 120, projection: None },
                LayerSpec::Fc { input: 120, output: 61, act: Activation::Sigmoid },
            ],
            seq_len: 8,
        },
        "RNN-26-93-61" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Rnn,
            layers: vec![
                LayerSpec::Rnn { input: 26, hidden: 93 },
                LayerSpec::Fc { input: 93, output: 61, act: Activation::Sigmoid },
            ],
            seq_len: 8,
        },
        "BM-V500-H500" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Boltzmann,
            layers: vec![LayerSpec::Fc { input: 500, output: 500, act: Activation::Sigmoid }],
            seq_len: 4,
        },
        "RBM-V500-H500" => WorkloadSpec {
            name: name.into(),
            class: WorkloadClass::Boltzmann,
            layers: vec![
                LayerSpec::Fc { input: 500, output: 500, act: Activation::Sigmoid },
                LayerSpec::Rnn { input: 500, hidden: 500 },
            ],
            seq_len: 4,
        },
        other => panic!("unknown workload {other:?}"),
    }
}

fn nmt(name: &str, layers_per_dir: usize) -> WorkloadSpec {
    let mut layers = Vec::new();
    for _ in 0..2 * layers_per_dir {
        layers.push(LayerSpec::Lstm { input: 1024, hidden: 1024, projection: None });
    }
    layers.push(LayerSpec::Fc { input: 1024, output: 40_000, act: Activation::None });
    WorkloadSpec { name: name.into(), class: WorkloadClass::DeepLstm, layers, seq_len: 50 }
}

fn vgg(name: &str, blocks: &[usize]) -> WorkloadSpec {
    let mut layers = Vec::new();
    let mut channels = 3;
    let mut size = 224;
    let widths = [64, 128, 256, 512, 512];
    for (b, &convs) in blocks.iter().enumerate() {
        for _ in 0..convs {
            layers.push(LayerSpec::Conv {
                input: channels,
                output: widths[b],
                kernel: 3,
                stride: 1,
                height: size,
                width: size,
            });
            channels = widths[b];
        }
        layers.push(LayerSpec::Pool { channels, window: 2, height: size, width: size });
        size /= 2;
    }
    layers.push(LayerSpec::Fc {
        input: channels * size * size,
        output: 4096,
        act: Activation::Relu,
    });
    layers.push(LayerSpec::Fc { input: 4096, output: 4096, act: Activation::Relu });
    layers.push(LayerSpec::Fc { input: 4096, output: 1000, act: Activation::None });
    WorkloadSpec { name: name.into(), class: WorkloadClass::Cnn, layers, seq_len: 1 }
}

/// All workload specs: Table 5 plus the Fig. 4 set.
pub fn all_specs() -> Vec<WorkloadSpec> {
    let mut names: Vec<&str> = TABLE5_NAMES.to_vec();
    names.extend([
        "Lenet5",
        "MLP-64-150-150-14",
        "LSTM-26-120-61",
        "RNN-26-93-61",
        "BM-V500-H500",
        "RBM-V500-H500",
    ]);
    names.into_iter().map(spec).collect()
}

/// Builds a compilable graph model for a non-CNN workload, optionally
/// overriding the sequence length (large LSTMs are typically simulated for
/// a few steps and scaled; see EXPERIMENTS.md).
///
/// Returns `None` for CNN workloads — those go through the looped layer
/// codegen in [`crate::cnn`] or the analytic model in [`crate::perf`].
///
/// # Errors
///
/// Propagates graph-construction failures.
pub fn build_graph_model(
    spec: &WorkloadSpec,
    weights: &mut WeightFactory,
    seq_len_override: Option<usize>,
) -> Result<Option<Model>> {
    if spec.class == WorkloadClass::Cnn {
        return Ok(None);
    }
    let steps = seq_len_override.unwrap_or(spec.seq_len);
    let mut model = Model::new(spec.name.clone());

    // Recurrent prefix (LSTM/RNN layers), then feed-forward suffix applied
    // to the last step's output.
    let recurrent: Vec<&LayerSpec> = spec
        .layers
        .iter()
        .filter(|l| matches!(l, LayerSpec::Lstm { .. } | LayerSpec::Rnn { .. }))
        .collect();
    let feedforward: Vec<&LayerSpec> =
        spec.layers.iter().filter(|l| matches!(l, LayerSpec::Fc { .. })).collect();

    let mut last = if recurrent.is_empty() {
        let input_width = match spec.layers.first() {
            Some(LayerSpec::Fc { input, .. }) => *input,
            _ => {
                return Err(puma_core::PumaError::Compile {
                    what: format!("workload {} has no layers", spec.name),
                })
            }
        };
        model.input("x0", input_width)
    } else {
        // Build the unrolled recurrent stack.
        let mut lstm_stack = Vec::new();
        let mut input_width = None;
        let mut rnn_stack = Vec::new();
        for l in &recurrent {
            match l {
                LayerSpec::Lstm { input, hidden, projection } => {
                    if input_width.is_none() {
                        input_width = Some(*input);
                    }
                    lstm_stack.push((*hidden, *projection));
                }
                LayerSpec::Rnn { input, hidden } => {
                    if input_width.is_none() {
                        input_width = Some(*input);
                    }
                    rnn_stack.push(*hidden);
                }
                _ => unreachable!(),
            }
        }
        let input_width = input_width.expect("recurrent layer present");
        if !lstm_stack.is_empty() {
            let outs = layers::lstm_network(&mut model, weights, input_width, &lstm_stack, steps)?;
            *outs.last().expect("at least one step")
        } else {
            // Vanilla RNN stack, unrolled manually.
            let mut weights_per_layer = Vec::new();
            let mut in_w = input_width;
            for (li, &hidden) in rnn_stack.iter().enumerate() {
                weights_per_layer.push(layers::rnn_weights(
                    &mut model,
                    weights,
                    &format!("rnn{li}"),
                    in_w,
                    hidden,
                ));
                in_w = hidden;
            }
            let mut h: Vec<_> =
                rnn_stack.iter().map(|&hd| model.constant_vector(vec![0.0; hd])).collect();
            let mut last = h[0];
            for t in 0..steps {
                let mut x = model.input(format!("x{t}"), input_width);
                for (li, w) in weights_per_layer.iter().enumerate() {
                    let h_next = layers::rnn_step(&mut model, w, x, h[li])?;
                    h[li] = h_next;
                    x = h_next;
                }
                last = x;
            }
            last
        }
    };

    for (i, l) in feedforward.iter().enumerate() {
        let LayerSpec::Fc { output, act, .. } = l else { unreachable!() };
        last = layers::dense(&mut model, weights, &format!("fc{i}"), last, *output, *act)?;
    }
    model.output("out", last);
    Ok(Some(model))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Table 5 parameter counts (the "# Parameters" column).
    const PUBLISHED_PARAMS: [(&str, f64); 8] = [
        ("MLPL4", 5e6),
        ("MLPL5", 21e6),
        ("NMTL3", 91e6),
        ("NMTL5", 125e6),
        ("BigLSTM", 856e6),
        ("LSTM-2048", 554e6),
        ("Vgg16", 136e6),
        ("Vgg19", 141e6),
    ];

    #[test]
    fn reconstructed_sizes_match_published_parameter_counts() {
        for (name, published) in PUBLISHED_PARAMS {
            let s = spec(name);
            let params = s.params() as f64;
            let ratio = params / published;
            assert!(
                (0.9..1.12).contains(&ratio),
                "{name}: {params:.2e} params vs published {published:.2e} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn table5_classes_match_paper() {
        assert_eq!(spec("MLPL4").class, WorkloadClass::Mlp);
        assert_eq!(spec("NMTL3").class, WorkloadClass::DeepLstm);
        assert_eq!(spec("BigLSTM").class, WorkloadClass::WideLstm);
        assert_eq!(spec("Vgg16").class, WorkloadClass::Cnn);
    }

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let s = spec("Vgg16");
        let convs = s.layers.iter().filter(|l| matches!(l, LayerSpec::Conv { .. })).count();
        let fcs = s.layers.iter().filter(|l| matches!(l, LayerSpec::Fc { .. })).count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        let s19 = spec("Vgg19");
        let convs19 = s19.layers.iter().filter(|l| matches!(l, LayerSpec::Conv { .. })).count();
        assert_eq!(convs19, 16);
    }

    #[test]
    fn lstm_workloads_have_sequence_50() {
        for name in ["NMTL3", "NMTL5", "BigLSTM", "LSTM-2048"] {
            assert_eq!(spec(name).seq_len, 50, "{name}");
        }
    }

    #[test]
    fn cnn_workloads_have_weight_reuse_and_others_do_not() {
        assert!(spec("Vgg16").layers.iter().any(|l| l.has_input_reuse()));
        assert!(!spec("MLPL4").layers.iter().any(|l| l.has_input_reuse()));
        // CNNs are compute-dominated: many more MACs than params.
        assert!(spec("Vgg16").macs_per_param() > 50.0);
        assert!(spec("MLPL4").macs_per_param() < 1.5);
    }

    #[test]
    fn graph_models_build_for_non_cnns() {
        for name in ["MLP-64-150-150-14", "LSTM-26-120-61", "RNN-26-93-61", "BM-V500-H500"] {
            let s = spec(name);
            let mut wf = WeightFactory::materialized(1);
            let m = build_graph_model(&s, &mut wf, Some(2)).unwrap();
            assert!(m.is_some(), "{name} should build");
            m.unwrap().validate().unwrap();
        }
    }

    #[test]
    fn cnn_returns_none_from_graph_builder() {
        let mut wf = WeightFactory::materialized(1);
        assert!(build_graph_model(&spec("Lenet5"), &mut wf, None).unwrap().is_none());
    }

    #[test]
    fn shape_only_factory_builds_big_models_cheaply() {
        let mut wf = WeightFactory::shape_only(1);
        let m = build_graph_model(&spec("BigLSTM"), &mut wf, Some(1)).unwrap().unwrap();
        // Graph exists with full shapes but no weight data.
        assert!(m.matrices().iter().all(|c| c.data.is_none()));
        assert!(m.matrices().iter().any(|c| c.cols == 688_000));
    }

    #[test]
    fn all_specs_enumerates_both_sets() {
        let specs = all_specs();
        assert_eq!(specs.len(), 14);
        assert!(specs.iter().any(|s| s.name == "Lenet5"));
        assert!(specs.iter().any(|s| s.name == "BigLSTM"));
    }
}
