//! Deterministic synthetic classification data for the accuracy
//! experiment (Fig. 13).
//!
//! The paper evaluates inference accuracy of a trained network under
//! crossbar quantization and write noise. We substitute a digit-like
//! synthetic task: each class is a Gaussian cluster around a random
//! prototype in feature space, with per-sample noise. The task is learnable
//! to high accuracy by a small MLP yet sensitive to weight corruption —
//! exactly what the experiment needs.

use crate::init::WeightRng;
use serde::{Deserialize, Serialize};

/// A labelled dataset of dense feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature dimension.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Samples, each `features` long.
    pub samples: Vec<Vec<f32>>,
    /// Labels in `0..classes`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Generates a cluster-classification dataset.
///
/// `spread` controls class overlap: prototypes are unit-scale, per-sample
/// Gaussian noise has this standard deviation.
pub fn synthetic_clusters(
    features: usize,
    classes: usize,
    per_class: usize,
    spread: f32,
    seed: u64,
) -> Dataset {
    let mut rng = WeightRng::new(seed);
    // Class prototypes.
    let prototypes: Vec<Vec<f32>> =
        (0..classes).map(|_| (0..features).map(|_| rng.uniform()).collect()).collect();
    let mut samples = Vec::with_capacity(classes * per_class);
    let mut labels = Vec::with_capacity(classes * per_class);
    for (label, proto) in prototypes.iter().enumerate() {
        for _ in 0..per_class {
            let sample: Vec<f32> = proto
                .iter()
                .map(|&p| {
                    // Sum of three uniforms approximates a Gaussian well
                    // enough for data generation.
                    let g = (rng.uniform() + rng.uniform() + rng.uniform()) / 1.73;
                    p + spread * g
                })
                .collect();
            samples.push(sample);
            labels.push(label);
        }
    }
    // Deterministic interleave so train/test splits are class-balanced.
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        order.swap(i, j);
    }
    Dataset {
        features,
        classes,
        samples: order.iter().map(|&i| samples[i].clone()).collect(),
        labels: order.iter().map(|&i| labels[i]).collect(),
    }
}

/// Splits a dataset into (train, test) at `train_fraction`.
pub fn split(data: &Dataset, train_fraction: f32) -> (Dataset, Dataset) {
    let n_train = ((data.len() as f32) * train_fraction) as usize;
    let mk = |range: std::ops::Range<usize>| Dataset {
        features: data.features,
        classes: data.classes,
        samples: data.samples[range.clone()].to_vec(),
        labels: data.labels[range].to_vec(),
    };
    (mk(0..n_train), mk(n_train..data.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_clusters(16, 4, 10, 0.1, 7);
        let b = synthetic_clusters(16, 4, 10, 0.1, 7);
        assert_eq!(a, b);
        let c = synthetic_clusters(16, 4, 10, 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_consistent() {
        let d = synthetic_clusters(16, 4, 10, 0.1, 1);
        assert_eq!(d.len(), 40);
        assert!(d.samples.iter().all(|s| s.len() == 16));
        assert!(d.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn all_classes_present() {
        let d = synthetic_clusters(8, 5, 6, 0.1, 2);
        for c in 0..5 {
            assert!(d.labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn split_partitions_data() {
        let d = synthetic_clusters(8, 3, 20, 0.1, 3);
        let (train, test) = split(&d, 0.75);
        assert_eq!(train.len(), 45);
        assert_eq!(test.len(), 15);
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn low_spread_clusters_are_separable_by_nearest_prototype() {
        // Sanity: with tiny spread, nearest-centroid classification should
        // be near perfect, proving the labels carry signal.
        let d = synthetic_clusters(16, 4, 25, 0.05, 4);
        let mut centroids = vec![vec![0.0f32; 16]; 4];
        let mut counts = [0usize; 4];
        for (s, &l) in d.samples.iter().zip(&d.labels) {
            for (c, v) in centroids[l].iter_mut().zip(s) {
                *c += v;
            }
            counts[l] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            for v in c.iter_mut() {
                *v /= n as f32;
            }
        }
        let mut correct = 0usize;
        for (s, &l) in d.samples.iter().zip(&d.labels) {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = a.iter().zip(s).map(|(x, y)| (x - y).powi(2)).sum();
                    let db: f32 = b.iter().zip(s).map(|(x, y)| (x - y).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            if best == l {
                correct += 1;
            }
        }
        assert!(correct as f32 / d.len() as f32 > 0.95);
    }
}
