//! Graph builders for the benchmark network families: MLP, LSTM, RNN,
//! BM/RBM. Each builder appends layers to a [`Model`] graph that the PUMA
//! compiler lowers to assembly.
//!
//! Recurrent networks are built by unrolling a configurable number of time
//! steps; the weight matrices are shared across steps, so the compiler maps
//! them to the *same* crossbars (verified by `weight_tiles` counts) — the
//! paper's weight-reuse property (§2.2.2).

use crate::init::WeightRng;
use crate::spec::Activation;
use puma_compiler::graph::{Model, VecId};
use puma_core::error::Result;

/// Produces weight matrices for the builders: either real Xavier-initialized
/// data or shape-only matrices for timing-only compilation of models too
/// large to materialize (BigLSTM's 856M parameters would need gigabytes).
#[derive(Debug, Clone)]
pub struct WeightFactory {
    rng: WeightRng,
    materialize: bool,
}

impl WeightFactory {
    /// A factory producing real weight data.
    pub fn materialized(seed: u64) -> Self {
        WeightFactory { rng: WeightRng::new(seed), materialize: true }
    }

    /// A factory producing shape-only matrices (timing-only compilation).
    pub fn shape_only(seed: u64) -> Self {
        WeightFactory { rng: WeightRng::new(seed), materialize: false }
    }

    /// Whether this factory materializes data.
    pub fn is_materialized(&self) -> bool {
        self.materialize
    }

    /// Registers a weight matrix on the model.
    pub fn matrix(
        &mut self,
        model: &mut Model,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
    ) -> puma_compiler::graph::MatrixId {
        if self.materialize {
            model.constant_matrix(name, self.rng.xavier_matrix(rows, cols))
        } else {
            model.constant_matrix_shaped(name, rows, cols)
        }
    }

    /// Registers a bias vector on the model.
    pub fn bias(&mut self, model: &mut Model, n: usize) -> VecId {
        if self.materialize {
            let b = self.rng.bias(n);
            model.constant_vector(b)
        } else {
            model.constant_vector(vec![0.0; n])
        }
    }
}

/// Applies an [`Activation`] to a graph value.
pub fn activate(model: &mut Model, value: VecId, act: Activation) -> VecId {
    match act {
        Activation::None => value,
        Activation::Relu => model.relu(value),
        Activation::Sigmoid => model.sigmoid(value),
        Activation::Tanh => model.tanh(value),
    }
}

/// Appends a fully-connected layer `act(W·x + b)`.
///
/// # Errors
///
/// Propagates shape mismatches from the graph builder.
pub fn dense(
    model: &mut Model,
    weights: &mut WeightFactory,
    name: &str,
    input: VecId,
    output_width: usize,
    act: Activation,
) -> Result<VecId> {
    let in_width = model.node(input).width;
    let w = weights.matrix(model, name, in_width, output_width);
    let b = weights.bias(model, output_width);
    let wx = model.mvm(w, input)?;
    let sum = model.add(wx, b)?;
    Ok(activate(model, sum, act))
}

/// Weight matrices of one LSTM layer (shared across time steps).
#[derive(Debug, Clone, Copy)]
pub struct LstmWeights {
    gates_x: [puma_compiler::graph::MatrixId; 4],
    gates_h: [puma_compiler::graph::MatrixId; 4],
    biases: [VecId; 4],
    projection: Option<puma_compiler::graph::MatrixId>,
    hidden: usize,
}

/// Creates the weight set for one LSTM layer.
pub fn lstm_weights(
    model: &mut Model,
    weights: &mut WeightFactory,
    name: &str,
    input: usize,
    hidden: usize,
    projection: Option<usize>,
) -> LstmWeights {
    let proj = projection.unwrap_or(hidden);
    let gates_x = ["f", "i", "o", "g"]
        .map(|g| weights.matrix(model, format!("{name}.Wx_{g}"), input, hidden));
    let gates_h =
        ["f", "i", "o", "g"].map(|g| weights.matrix(model, format!("{name}.Wh_{g}"), proj, hidden));
    let biases = [0, 1, 2, 3].map(|_| weights.bias(model, hidden));
    let projection = projection.map(|p| weights.matrix(model, format!("{name}.proj"), hidden, p));
    LstmWeights { gates_x, gates_h, biases, projection, hidden }
}

/// Applies one LSTM step: returns `(h_next, c_next)`.
///
/// Gate order: forget, input, output, candidate (Eq. 2-4 of the paper,
/// decomposed as `W·[h,x] = Wx·x + Wh·h`).
///
/// # Errors
///
/// Propagates shape mismatches from the graph builder.
pub fn lstm_step(
    model: &mut Model,
    weights: &LstmWeights,
    x: VecId,
    h_prev: VecId,
    c_prev: VecId,
) -> Result<(VecId, VecId)> {
    let mut gates = Vec::with_capacity(4);
    for k in 0..4 {
        let wx = model.mvm(weights.gates_x[k], x)?;
        let wh = model.mvm(weights.gates_h[k], h_prev)?;
        let s = model.add(wx, wh)?;
        let s = model.add(s, weights.biases[k])?;
        let g = if k == 3 { model.tanh(s) } else { model.sigmoid(s) };
        gates.push(g);
    }
    let (f, i, o, g) = (gates[0], gates[1], gates[2], gates[3]);
    let fc = model.mul(f, c_prev)?;
    let ig = model.mul(i, g)?;
    let c_next = model.add(fc, ig)?;
    let c_act = model.tanh(c_next);
    let h_cell = model.mul(o, c_act)?;
    let h_next = match weights.projection {
        Some(p) => model.mvm(p, h_cell)?,
        None => h_cell,
    };
    let _ = weights.hidden;
    Ok((h_next, c_next))
}

/// Builds an unrolled multi-layer LSTM over `steps` time steps.
///
/// Inputs `x0..x{steps-1}`; outputs the final layer's hidden state at every
/// step (`h0..`). Initial states are zero constants.
///
/// # Errors
///
/// Propagates shape mismatches from the graph builder.
pub fn lstm_network(
    model: &mut Model,
    weights: &mut WeightFactory,
    input_width: usize,
    layers: &[(usize, Option<usize>)],
    steps: usize,
) -> Result<Vec<VecId>> {
    let mut layer_weights = Vec::new();
    let mut in_w = input_width;
    for (li, &(hidden, projection)) in layers.iter().enumerate() {
        let w = lstm_weights(model, weights, &format!("lstm{li}"), in_w, hidden, projection);
        layer_weights.push(w);
        in_w = projection.unwrap_or(hidden);
    }
    // Zero initial states.
    let mut h: Vec<VecId> = layers
        .iter()
        .map(|&(hidden, projection)| model.constant_vector(vec![0.0; projection.unwrap_or(hidden)]))
        .collect();
    let mut c: Vec<VecId> =
        layers.iter().map(|&(hidden, _)| model.constant_vector(vec![0.0; hidden])).collect();
    let mut outputs = Vec::with_capacity(steps);
    for t in 0..steps {
        let mut x = model.input(format!("x{t}"), input_width);
        for (li, weights) in layer_weights.iter().enumerate() {
            let (h_next, c_next) = lstm_step(model, weights, x, h[li], c[li])?;
            h[li] = h_next;
            c[li] = c_next;
            x = h_next;
        }
        outputs.push(x);
        let _ = t;
    }
    Ok(outputs)
}

/// Weight matrices of a vanilla RNN layer.
#[derive(Debug, Clone, Copy)]
pub struct RnnWeights {
    wx: puma_compiler::graph::MatrixId,
    wh: puma_compiler::graph::MatrixId,
    bias: VecId,
}

/// Creates the weight set for one RNN layer.
pub fn rnn_weights(
    model: &mut Model,
    weights: &mut WeightFactory,
    name: &str,
    input: usize,
    hidden: usize,
) -> RnnWeights {
    RnnWeights {
        wx: weights.matrix(model, format!("{name}.Wx"), input, hidden),
        wh: weights.matrix(model, format!("{name}.Wh"), hidden, hidden),
        bias: weights.bias(model, hidden),
    }
}

/// One RNN step: `h' = tanh(Wx·x + Wh·h + b)`.
///
/// # Errors
///
/// Propagates shape mismatches from the graph builder.
pub fn rnn_step(model: &mut Model, weights: &RnnWeights, x: VecId, h: VecId) -> Result<VecId> {
    let a = model.mvm(weights.wx, x)?;
    let b = model.mvm(weights.wh, h)?;
    let s = model.add(a, b)?;
    let s = model.add(s, weights.bias)?;
    Ok(model.tanh(s))
}

/// Builds a Boltzmann-machine-style energy layer: `h = sigmoid(W·v)`
/// (BM uses inputs only; RBM adds the previous hidden state, §2.4).
///
/// # Errors
///
/// Propagates shape mismatches from the graph builder.
pub fn boltzmann(
    model: &mut Model,
    weights: &mut WeightFactory,
    visible: usize,
    hidden: usize,
    restricted: bool,
    steps: usize,
) -> Result<VecId> {
    let w = weights.matrix(model, "W", visible, hidden);
    let u = restricted.then(|| weights.matrix(model, "U", hidden, hidden));
    let mut h_prev = model.constant_vector(vec![0.0; hidden]);
    let mut out = h_prev;
    for t in 0..steps {
        let v = model.input(format!("v{t}"), visible);
        let wv = model.mvm(w, v)?;
        let pre = match u {
            Some(u) => {
                let uh = model.mvm(u, h_prev)?;
                model.add(wv, uh)?
            }
            None => wv,
        };
        out = model.sigmoid(pre);
        h_prev = out;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dense_layer_shapes() {
        let mut m = Model::new("d");
        let mut rng = WeightFactory::materialized(1);
        let x = m.input("x", 16);
        let y = dense(&mut m, &mut rng, "W", x, 8, Activation::Relu).unwrap();
        assert_eq!(m.node(y).width, 8);
        m.output("y", y);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn lstm_step_reference_is_bounded() {
        // Sigmoid/tanh mixing keeps h in (-1, 1).
        let mut m = Model::new("l");
        let mut rng = WeightFactory::materialized(2);
        let x = m.input("x", 8);
        let h0 = m.constant_vector(vec![0.0; 8]);
        let c0 = m.constant_vector(vec![0.0; 8]);
        let w = lstm_weights(&mut m, &mut rng, "l0", 8, 8, None);
        let (h1, c1) = lstm_step(&mut m, &w, x, h0, c0).unwrap();
        m.output("h", h1);
        m.output("c", c1);
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![0.5; 8]);
        let out = m.evaluate_reference(&inputs).unwrap();
        assert!(out["h"].iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn unrolled_lstm_shares_weights() {
        let mut m = Model::new("u");
        let mut rng = WeightFactory::materialized(3);
        let outs = lstm_network(&mut m, &mut rng, 8, &[(8, None)], 3).unwrap();
        assert_eq!(outs.len(), 3);
        m.output("h_last", *outs.last().unwrap());
        // 8 gate matrices + 0 projection, regardless of steps.
        assert_eq!(m.matrices().len(), 8);
    }

    #[test]
    fn projection_reduces_output_width() {
        let mut m = Model::new("p");
        let mut rng = WeightFactory::materialized(4);
        let outs = lstm_network(&mut m, &mut rng, 8, &[(16, Some(4))], 2).unwrap();
        assert_eq!(m.node(outs[0]).width, 4);
        // 8 gate matrices + 1 projection.
        assert_eq!(m.matrices().len(), 9);
    }

    #[test]
    fn rnn_step_builds() {
        let mut m = Model::new("r");
        let mut rng = WeightFactory::materialized(5);
        let x = m.input("x", 6);
        let h0 = m.constant_vector(vec![0.0; 10]);
        let w = rnn_weights(&mut m, &mut rng, "r0", 6, 10);
        let h1 = rnn_step(&mut m, &w, x, h0).unwrap();
        assert_eq!(m.node(h1).width, 10);
    }

    #[test]
    fn boltzmann_variants_differ_in_matrices() {
        let mut bm = Model::new("bm");
        let mut rng = WeightFactory::materialized(6);
        let out = boltzmann(&mut bm, &mut rng, 12, 10, false, 2).unwrap();
        bm.output("h", out);
        assert_eq!(bm.matrices().len(), 1);

        let mut rbm = Model::new("rbm");
        let mut rng = WeightFactory::materialized(6);
        let out = boltzmann(&mut rbm, &mut rng, 12, 10, true, 2).unwrap();
        rbm.output("h", out);
        assert_eq!(rbm.matrices().len(), 2);
    }
}
