//! The PUMA instruction set (Table 2 of the paper).
//!
//! Compute: [`Instruction::Mvm`], [`Instruction::Alu`],
//! [`Instruction::AluImm`], [`Instruction::AluInt`].
//! Intra-core data movement: [`Instruction::Set`], [`Instruction::Copy`].
//! Intra-tile data movement: [`Instruction::Load`], [`Instruction::Store`].
//! Intra-node data movement: [`Instruction::Send`], [`Instruction::Receive`].
//! Control: [`Instruction::Jump`], [`Instruction::Branch`], plus
//! [`Instruction::Halt`] to terminate a stream (an implementation necessity
//! the paper leaves implicit).

use crate::reg::RegRef;
use puma_core::fixed::Fixed;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Vector ALU operations executed by the VFU (Table 2 "ALU" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise division.
    Div,
    /// Arithmetic left shift by `src2` bits.
    Shl,
    /// Arithmetic right shift by `src2` bits.
    Shr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise inversion (unary).
    Not,
    /// Rectified linear unit (unary nonlinear).
    Relu,
    /// Logistic sigmoid (unary transcendental, ROM-embedded RAM lookup).
    Sigmoid,
    /// Hyperbolic tangent (unary transcendental).
    Tanh,
    /// Natural logarithm (unary transcendental).
    Log,
    /// Exponential (unary transcendental).
    Exp,
    /// Fill destination with pseudo-random values ("random vector").
    Rand,
    /// Keep every `src2`-th element ("subsampling").
    Subsample,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 18] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::And,
        AluOp::Or,
        AluOp::Not,
        AluOp::Relu,
        AluOp::Sigmoid,
        AluOp::Tanh,
        AluOp::Log,
        AluOp::Exp,
        AluOp::Rand,
        AluOp::Subsample,
        AluOp::Min,
        AluOp::Max,
    ];

    /// True for operations evaluated through the ROM-embedded RAM lookup
    /// tables (§3.4.1): the transcendental functions.
    pub const fn is_transcendental(self) -> bool {
        matches!(self, AluOp::Sigmoid | AluOp::Tanh | AluOp::Log | AluOp::Exp)
    }

    /// True for operations that read only `src1` (no second vector operand).
    pub const fn is_unary(self) -> bool {
        matches!(
            self,
            AluOp::Not
                | AluOp::Relu
                | AluOp::Sigmoid
                | AluOp::Tanh
                | AluOp::Log
                | AluOp::Exp
                | AluOp::Rand
        )
    }

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Not => "not",
            AluOp::Relu => "relu",
            AluOp::Sigmoid => "sigmoid",
            AluOp::Tanh => "tanh",
            AluOp::Log => "log",
            AluOp::Exp => "exp",
            AluOp::Rand => "rand",
            AluOp::Subsample => "subsample",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }
}

/// Vector-immediate ALU operations (Table 2 "ALUimm" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluImmOp {
    /// Add the immediate to every element.
    Add,
    /// Subtract the immediate from every element.
    Sub,
    /// Multiply every element by the immediate.
    Mul,
    /// Divide every element by the immediate.
    Div,
}

impl AluImmOp {
    /// All operations, in encoding order.
    pub const ALL: [AluImmOp; 4] = [AluImmOp::Add, AluImmOp::Sub, AluImmOp::Mul, AluImmOp::Div];

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Add => "addi",
            AluImmOp::Sub => "subi",
            AluImmOp::Mul => "muli",
            AluImmOp::Div => "divi",
        }
    }
}

/// Scalar integer operations executed by the SFU (Table 2 "ALUint" row).
///
/// # The booleans-feed-branches contract
///
/// Scalar instructions operate on **raw register bits** as 16-bit
/// integers, not on Q4.12 values. Compare results ([`ScalarOp::Eq`],
/// [`ScalarOp::Gt`], [`ScalarOp::Ne`]) write raw bit-value `1` for true
/// and `0` for false — which is `1/4096` when misread as Q4.12. That is
/// deliberate: the consumers of scalar booleans are
/// [`Instruction::Branch`] (which compares raw bits), further scalar
/// arithmetic (loop counters, address cursors), and indexed addressing
/// (see [`MemAddr`]) — all of which live in the raw-integer domain.
/// Vector code that needs a Q4.12 `1.0` must construct it explicitly
/// (e.g. `set` with immediate 4096); feeding a scalar boolean into the
/// Q4.12 vector datapath without conversion is a program bug, not a
/// simulator one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Set destination to raw bit-value 1 if equal, else 0.
    Eq,
    /// Set destination to raw bit-value 1 if `src1 > src2`, else 0.
    Gt,
    /// Set destination to raw bit-value 1 if not equal, else 0.
    Ne,
}

impl ScalarOp {
    /// All operations, in encoding order.
    pub const ALL: [ScalarOp; 5] =
        [ScalarOp::Add, ScalarOp::Sub, ScalarOp::Eq, ScalarOp::Gt, ScalarOp::Ne];

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ScalarOp::Add => "iadd",
            ScalarOp::Sub => "isub",
            ScalarOp::Eq => "ieq",
            ScalarOp::Gt => "igt",
            ScalarOp::Ne => "ine",
        }
    }
}

/// Branch conditions for [`Instruction::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Taken if `src1 == src2`.
    Eq,
    /// Taken if `src1 != src2`.
    Ne,
    /// Taken if `src1 < src2` (signed).
    Lt,
    /// Taken if `src1 <= src2` (signed).
    Le,
    /// Taken if `src1 > src2` (signed).
    Gt,
    /// Taken if `src1 >= src2` (signed).
    Ge,
}

impl BranchCond {
    /// All conditions, in encoding order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ge,
    ];

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Le => "le",
            BranchCond::Gt => "gt",
            BranchCond::Ge => "ge",
        }
    }

    /// Evaluates the condition on two signed 16-bit values.
    pub fn eval(self, a: i16, b: i16) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// Bitmask selecting which of a core's MVMUs an MVM instruction activates
/// (§3.2.4: one MVM instruction can run several MVMUs at once, which is how
/// the compiler's MVM coalescing pays off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MvmuMask(pub u8);

impl MvmuMask {
    /// Mask activating only MVMU `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn single(index: usize) -> Self {
        assert!(index < 8, "MVMU index out of mask range");
        MvmuMask(1 << index)
    }

    /// True if MVMU `index` is activated.
    pub const fn contains(self, index: usize) -> bool {
        self.0 & (1 << index) != 0
    }

    /// Number of activated MVMUs.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Union of two masks (the coalescing operation).
    pub const fn union(self, other: MvmuMask) -> MvmuMask {
        MvmuMask(self.0 | other.0)
    }

    /// Iterates over activated MVMU indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..8).filter(move |&i| self.contains(i))
    }
}

impl fmt::Display for MvmuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04b}", self.0)
    }
}

/// A memory operand: an immediate word address in tile shared memory, plus
/// an optional index register for computed (random) access (§2.3.2 requires
/// fine-grain random access for CNN pooling/normalization).
///
/// # Indexed-addressing semantics
///
/// The index register's **raw 16-bit contents are an integer element
/// offset**, not a Q4.12 value: the effective address is
/// `base + raw_bits(index)` in words. Address cursors therefore live in
/// the scalar integer domain — initialized with `set` (raw immediate) and
/// advanced with `iadd`/`isub` — alongside loop counters. A register
/// holding Q4.12 `1.0` (raw bits 4096) indexes word `base + 4096`, which
/// is almost never what a kernel wants.
///
/// Two conditions are execution faults in the simulator rather than
/// silent wraps:
///
/// - a **negative** index (raw bits < 0) — the architecture has no
///   backward indexed addressing, and zero-extending a negative counter
///   would address wildly wrong words;
/// - `base + offset` overflowing the 32-bit word-address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAddr {
    /// Immediate base word address.
    pub base: u32,
    /// Optional register whose raw bits (a non-negative integer element
    /// offset) are added to the base.
    pub index: Option<RegRef>,
}

impl MemAddr {
    /// An absolute (immediate-only) address.
    pub const fn absolute(base: u32) -> Self {
        MemAddr { base, index: None }
    }

    /// A base + register-indexed address.
    pub const fn indexed(base: u32, index: RegRef) -> Self {
        MemAddr { base, index: Some(index) }
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            None => write!(f, "@{}", self.base),
            Some(reg) => write!(f, "@{}+{}", self.base, reg),
        }
    }
}

/// One PUMA instruction (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Matrix-vector multiplication on the MVMUs selected by `mask`.
    ///
    /// `filter`/`stride` implement input shuffling (§3.2.3): the DAC array
    /// reads XbarIn rotated left by `stride` positions, and only the first
    /// `filter` rows are driven when `filter` is nonzero (rows past the
    /// filter see zero input).
    Mvm {
        /// Which MVMUs to activate.
        mask: MvmuMask,
        /// Active-row count (0 means all rows).
        filter: u16,
        /// Left-rotation applied to XbarIn before the DACs.
        stride: u16,
    },
    /// Vector operation of `width` elements on the VFU.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination base register.
        dest: RegRef,
        /// First source base register.
        src1: RegRef,
        /// Second source base register (ignored by unary ops).
        src2: RegRef,
        /// Vector width in elements (temporal SIMD, §3.3).
        width: u16,
    },
    /// Vector-immediate operation of `width` elements on the VFU.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination base register.
        dest: RegRef,
        /// Source base register.
        src1: RegRef,
        /// Fixed-point immediate.
        imm: Fixed,
        /// Vector width in elements.
        width: u16,
    },
    /// Scalar integer operation on the SFU.
    AluInt {
        /// Operation.
        op: ScalarOp,
        /// Destination register.
        dest: RegRef,
        /// First source register.
        src1: RegRef,
        /// Second source register.
        src2: RegRef,
    },
    /// Register initialization with a raw 16-bit immediate.
    Set {
        /// Destination register.
        dest: RegRef,
        /// Immediate bits.
        imm: i16,
    },
    /// Register-to-register vector copy (e.g. XbarOut → XbarIn between
    /// layers, or spills between general registers and Xbar registers).
    Copy {
        /// Destination base register.
        dest: RegRef,
        /// Source base register.
        src: RegRef,
        /// Vector width in elements.
        width: u16,
    },
    /// Load `width` words from tile shared memory into registers.
    /// Blocks until every word is valid (§4.1.1).
    Load {
        /// Destination base register.
        dest: RegRef,
        /// Source address.
        addr: MemAddr,
        /// Vector width in words.
        width: u16,
    },
    /// Store `width` words from registers into tile shared memory, marking
    /// each word valid with consumer count `count` (§4.1.1: "write (set
    /// count)"). Blocks while any destination word is still valid.
    Store {
        /// Destination address.
        addr: MemAddr,
        /// Source base register.
        src: RegRef,
        /// Attribute-buffer consumer count for the written words.
        count: u16,
        /// Vector width in words.
        width: u16,
    },
    /// Tile-level: read `width` words from shared memory and send them to
    /// FIFO `fifo` of tile `target` on node `node`.
    ///
    /// When `node` equals the executing node's id the packet travels over
    /// the on-chip network; otherwise it crosses the chip-to-chip
    /// interconnect (§3.1 node scale-out; see
    /// `puma_core::timing::InterconnectConfig`) and `target` names a tile
    /// index *local to the destination node*. Single-node images always
    /// carry `node: 0`.
    Send {
        /// Source address in the sending tile's shared memory.
        addr: MemAddr,
        /// Destination FIFO id in the receiving tile.
        fifo: u8,
        /// Destination tile index (local to `node`).
        target: u16,
        /// Destination node index (0-255; 0 for single-node images).
        node: u16,
        /// Vector width in words.
        width: u16,
    },
    /// Tile-level: pop `width` words from FIFO `fifo` and write them to
    /// shared memory with consumer count `count`.
    Receive {
        /// Destination address in this tile's shared memory.
        addr: MemAddr,
        /// Source FIFO id.
        fifo: u8,
        /// Attribute-buffer consumer count for the written words.
        count: u16,
        /// Vector width in words.
        width: u16,
    },
    /// Unconditional jump to absolute instruction index `pc`.
    Jump {
        /// Target instruction index.
        pc: u32,
    },
    /// Conditional jump to absolute instruction index `pc`.
    Branch {
        /// Condition evaluated on `src1`, `src2`.
        cond: BranchCond,
        /// First compared register.
        src1: RegRef,
        /// Second compared register.
        src2: RegRef,
        /// Target instruction index when taken.
        pc: u32,
    },
    /// Terminates the instruction stream.
    Halt,
}

/// Execution-unit categories used by the paper's Fig. 4 static-instruction
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstructionCategory {
    /// send/receive (inter-tile data transfer).
    InterTile,
    /// load/store (inter-core data transfer through shared memory).
    InterCore,
    /// jmp/brn.
    ControlFlow,
    /// Scalar functional unit (alu-int, set).
    Sfu,
    /// Vector functional unit (alu, alu-imm, copy).
    Vfu,
    /// MVM unit (crossbar).
    Mvm,
}

impl InstructionCategory {
    /// All categories in Fig. 4 order.
    pub const ALL: [InstructionCategory; 6] = [
        InstructionCategory::InterTile,
        InstructionCategory::InterCore,
        InstructionCategory::ControlFlow,
        InstructionCategory::Sfu,
        InstructionCategory::Vfu,
        InstructionCategory::Mvm,
    ];

    /// Position of this category in [`InstructionCategory::ALL`] (dense
    /// index for flat-array instruction counters in the simulator).
    pub const fn index(self) -> usize {
        match self {
            InstructionCategory::InterTile => 0,
            InstructionCategory::InterCore => 1,
            InstructionCategory::ControlFlow => 2,
            InstructionCategory::Sfu => 3,
            InstructionCategory::Vfu => 4,
            InstructionCategory::Mvm => 5,
        }
    }

    /// Display label matching the paper's legend.
    pub const fn label(self) -> &'static str {
        match self {
            InstructionCategory::InterTile => "Inter-Tile Data Transfer",
            InstructionCategory::InterCore => "Inter-Core Data Transfer",
            InstructionCategory::ControlFlow => "Control Flow",
            InstructionCategory::Sfu => "Scalar Functional Unit",
            InstructionCategory::Vfu => "Vector Functional Unit",
            InstructionCategory::Mvm => "MVM Unit (crossbar)",
        }
    }
}

impl Instruction {
    /// The execution-unit category of this instruction (Fig. 4).
    ///
    /// `copy` occupies the vector datapath and counts as VFU; `set` executes
    /// on the scalar unit; `halt` is counted as control flow.
    pub const fn category(&self) -> InstructionCategory {
        match self {
            Instruction::Mvm { .. } => InstructionCategory::Mvm,
            Instruction::Alu { .. } | Instruction::AluImm { .. } | Instruction::Copy { .. } => {
                InstructionCategory::Vfu
            }
            Instruction::AluInt { .. } | Instruction::Set { .. } => InstructionCategory::Sfu,
            Instruction::Load { .. } | Instruction::Store { .. } => InstructionCategory::InterCore,
            Instruction::Send { .. } | Instruction::Receive { .. } => {
                InstructionCategory::InterTile
            }
            Instruction::Jump { .. } | Instruction::Branch { .. } | Instruction::Halt => {
                InstructionCategory::ControlFlow
            }
        }
    }

    /// True for instructions that may block on inter-core/tile
    /// synchronization (used by deadlock analysis).
    pub const fn may_block(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::Send { .. }
                | Instruction::Receive { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcendental_classification() {
        assert!(AluOp::Sigmoid.is_transcendental());
        assert!(AluOp::Tanh.is_transcendental());
        assert!(!AluOp::Add.is_transcendental());
        assert!(!AluOp::Relu.is_transcendental());
    }

    #[test]
    fn unary_classification() {
        assert!(AluOp::Relu.is_unary());
        assert!(AluOp::Exp.is_unary());
        assert!(!AluOp::Min.is_unary());
        assert!(!AluOp::Subsample.is_unary());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
        for op in AluImmOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in ScalarOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
    }

    #[test]
    fn branch_conditions_evaluate() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(BranchCond::Le.eval(0, 0));
        assert!(BranchCond::Gt.eval(5, 4));
        assert!(BranchCond::Ge.eval(4, 4));
        assert!(!BranchCond::Lt.eval(1, 0));
    }

    #[test]
    fn mask_operations() {
        let m = MvmuMask::single(0).union(MvmuMask::single(1));
        assert_eq!(m.count(), 2);
        assert!(m.contains(0) && m.contains(1) && !m.contains(2));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "MVMU index out of mask range")]
    fn mask_index_bounds() {
        let _ = MvmuMask::single(8);
    }

    #[test]
    fn category_index_matches_all_order() {
        // `index()` is hand-written; the simulator's flat instruction
        // counters rely on it agreeing with `ALL`'s order.
        for (i, c) in InstructionCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }

    #[test]
    fn categories_cover_fig4() {
        use crate::reg::RegRef;
        let r = RegRef::general(0);
        assert_eq!(
            Instruction::Mvm { mask: MvmuMask(1), filter: 0, stride: 0 }.category(),
            InstructionCategory::Mvm
        );
        assert_eq!(
            Instruction::Alu { op: AluOp::Add, dest: r, src1: r, src2: r, width: 4 }.category(),
            InstructionCategory::Vfu
        );
        assert_eq!(
            Instruction::AluInt { op: ScalarOp::Add, dest: r, src1: r, src2: r }.category(),
            InstructionCategory::Sfu
        );
        assert_eq!(
            Instruction::Load { dest: r, addr: MemAddr::absolute(0), width: 1 }.category(),
            InstructionCategory::InterCore
        );
        assert_eq!(
            Instruction::Send { addr: MemAddr::absolute(0), fifo: 0, target: 0, node: 0, width: 1 }
                .category(),
            InstructionCategory::InterTile
        );
        assert_eq!(Instruction::Halt.category(), InstructionCategory::ControlFlow);
    }

    #[test]
    fn blocking_classification() {
        let r = RegRef::general(0);
        assert!(Instruction::Load { dest: r, addr: MemAddr::absolute(0), width: 1 }.may_block());
        assert!(!Instruction::Jump { pc: 0 }.may_block());
    }

    #[test]
    fn mem_addr_displays() {
        assert_eq!(MemAddr::absolute(42).to_string(), "@42");
        assert_eq!(MemAddr::indexed(8, RegRef::general(3)).to_string(), "@8+r3");
    }
}
