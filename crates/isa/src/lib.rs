//! The PUMA instruction set architecture.
//!
//! This crate defines the ISA of Table 2 in the paper: the instruction
//! types ([`instr`]), the three per-core register spaces ([`reg`]), a
//! fixed-width binary encoding ([`encode`]), a textual assembler and
//! disassembler ([`asm`]), and the program/image containers the compiler
//! emits and the simulator consumes ([`program`]).
//!
//! # Examples
//!
//! ```
//! use puma_isa::asm;
//!
//! # fn main() -> puma_core::Result<()> {
//! let program = asm::assemble(
//!     "mvm 1 0 0\n\
//!      tanh r0 xo0 128\n\
//!      halt\n",
//! )?;
//! let bytes = puma_isa::encode::encode_stream(&program)?;
//! assert_eq!(puma_isa::encode::decode_stream(&bytes)?, program);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod encode;
pub mod instr;
pub mod program;
pub mod reg;

pub use instr::{
    AluImmOp, AluOp, BranchCond, Instruction, InstructionCategory, MemAddr, MvmuMask, ScalarOp,
};
pub use program::{CoreImage, IoBinding, MachineImage, Program, TileImage};
pub use reg::{RegRef, RegSpace};
