//! Binary instruction encoding.
//!
//! The paper states instructions are seven bytes wide but defers the field
//! layout to a companion paper. We define a concrete fixed-width
//! **12-byte** encoding that carries every Table 2 operand (the wide
//! `vec-width` and register operands that motivate the paper's "wide
//! instruction design" are what push us past seven bytes; see DESIGN.md).
//!
//! Layout: `[opcode u8][aux u8][f1 u16][f2 u16][f3 u16][f4 u16][f5 u16]`,
//! little-endian fields. `aux` carries sub-opcodes, MVMU masks, or the
//! compact index-register field of memory instructions.

use crate::instr::{AluImmOp, AluOp, BranchCond, Instruction, MemAddr, MvmuMask, ScalarOp};
use crate::reg::{RegRef, RegSpace};
use puma_core::error::{PumaError, Result};
use puma_core::fixed::Fixed;

/// Size of one encoded instruction in bytes.
pub const INSTRUCTION_BYTES: usize = 12;

/// `aux` value meaning "no index register" on memory instructions.
const NO_INDEX: u8 = 0xFF;

mod opcode {
    pub const MVM: u8 = 0;
    pub const ALU: u8 = 1;
    pub const ALU_IMM: u8 = 2;
    pub const ALU_INT: u8 = 3;
    pub const SET: u8 = 4;
    pub const COPY: u8 = 5;
    pub const LOAD: u8 = 6;
    pub const STORE: u8 = 7;
    pub const SEND: u8 = 8;
    pub const RECEIVE: u8 = 9;
    pub const JUMP: u8 = 10;
    pub const BRANCH: u8 = 11;
    pub const HALT: u8 = 12;
}

fn encode_index_reg(addr: &MemAddr) -> Result<u8> {
    match addr.index {
        None => Ok(NO_INDEX),
        Some(reg) => {
            if reg.space != RegSpace::General || reg.index >= NO_INDEX as u16 {
                Err(PumaError::Encoding {
                    what: format!(
                        "memory index register must be a general register below r255, got {reg}"
                    ),
                })
            } else {
                Ok(reg.index as u8)
            }
        }
    }
}

fn decode_index_reg(aux: u8) -> Option<RegRef> {
    if aux == NO_INDEX {
        None
    } else {
        Some(RegRef::general(aux as u16))
    }
}

struct Fields {
    opcode: u8,
    aux: u8,
    f: [u16; 5],
}

impl Fields {
    fn new(opcode: u8) -> Self {
        Fields { opcode, aux: 0, f: [0; 5] }
    }

    fn to_bytes(&self) -> [u8; INSTRUCTION_BYTES] {
        let mut out = [0u8; INSTRUCTION_BYTES];
        out[0] = self.opcode;
        out[1] = self.aux;
        for (i, v) in self.f.iter().enumerate() {
            out[2 + 2 * i..4 + 2 * i].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8; INSTRUCTION_BYTES]) -> Self {
        let mut f = [0u16; 5];
        for (i, v) in f.iter_mut().enumerate() {
            *v = u16::from_le_bytes([bytes[2 + 2 * i], bytes[3 + 2 * i]]);
        }
        Fields { opcode: bytes[0], aux: bytes[1], f }
    }
}

fn split_u32(v: u32) -> (u16, u16) {
    ((v & 0xFFFF) as u16, (v >> 16) as u16)
}

fn join_u32(lo: u16, hi: u16) -> u32 {
    lo as u32 | ((hi as u32) << 16)
}

/// Encodes one instruction into its 12-byte representation.
///
/// # Errors
///
/// Returns [`PumaError::Encoding`] if a memory index register is not a
/// general register below `r255` (the compact `aux` field cannot hold
/// other registers).
pub fn encode(instr: &Instruction) -> Result<[u8; INSTRUCTION_BYTES]> {
    let mut x = match *instr {
        Instruction::Mvm { mask, filter, stride } => {
            let mut f = Fields::new(opcode::MVM);
            f.aux = mask.0;
            f.f[0] = filter;
            f.f[1] = stride;
            f
        }
        Instruction::Alu { op, dest, src1, src2, width } => {
            let mut f = Fields::new(opcode::ALU);
            f.aux = AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            f.f = [dest.encode(), src1.encode(), src2.encode(), width, 0];
            f
        }
        Instruction::AluImm { op, dest, src1, imm, width } => {
            let mut f = Fields::new(opcode::ALU_IMM);
            f.aux = AluImmOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            f.f = [dest.encode(), src1.encode(), imm.to_bits() as u16, width, 0];
            f
        }
        Instruction::AluInt { op, dest, src1, src2 } => {
            let mut f = Fields::new(opcode::ALU_INT);
            f.aux = ScalarOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            f.f = [dest.encode(), src1.encode(), src2.encode(), 0, 0];
            f
        }
        Instruction::Set { dest, imm } => {
            let mut f = Fields::new(opcode::SET);
            f.f = [dest.encode(), imm as u16, 0, 0, 0];
            f
        }
        Instruction::Copy { dest, src, width } => {
            let mut f = Fields::new(opcode::COPY);
            f.f = [dest.encode(), src.encode(), width, 0, 0];
            f
        }
        Instruction::Load { dest, addr, width } => {
            let mut f = Fields::new(opcode::LOAD);
            f.aux = encode_index_reg(&addr)?;
            let (lo, hi) = split_u32(addr.base);
            f.f = [dest.encode(), lo, hi, width, 0];
            f
        }
        Instruction::Store { addr, src, count, width } => {
            let mut f = Fields::new(opcode::STORE);
            f.aux = encode_index_reg(&addr)?;
            let (lo, hi) = split_u32(addr.base);
            f.f = [src.encode(), lo, hi, count, width];
            f
        }
        Instruction::Send { addr, fifo, target, node, width } => {
            let mut f = Fields::new(opcode::SEND);
            f.aux = encode_index_reg(&addr)?;
            if node > u8::MAX as u16 {
                return Err(PumaError::Encoding {
                    what: format!("send node id {node} exceeds the encodable 0-255 range"),
                });
            }
            let (lo, hi) = split_u32(addr.base);
            // The destination node shares a field with the FIFO id: both
            // are byte-sized (16 FIFOs per tile, up to 256 nodes).
            f.f = [lo, hi, fifo as u16 | (node << 8), target, width];
            f
        }
        Instruction::Receive { addr, fifo, count, width } => {
            let mut f = Fields::new(opcode::RECEIVE);
            f.aux = encode_index_reg(&addr)?;
            let (lo, hi) = split_u32(addr.base);
            f.f = [lo, hi, fifo as u16, count, width];
            f
        }
        Instruction::Jump { pc } => {
            let mut f = Fields::new(opcode::JUMP);
            let (lo, hi) = split_u32(pc);
            f.f = [lo, hi, 0, 0, 0];
            f
        }
        Instruction::Branch { cond, src1, src2, pc } => {
            let mut f = Fields::new(opcode::BRANCH);
            f.aux = BranchCond::ALL.iter().position(|&c| c == cond).unwrap() as u8;
            let (lo, hi) = split_u32(pc);
            f.f = [src1.encode(), src2.encode(), lo, hi, 0];
            f
        }
        Instruction::Halt => Fields::new(opcode::HALT),
    };
    // Normalize: unused fields already zero.
    x.f.iter_mut().for_each(|_| {});
    Ok(x.to_bytes())
}

fn lookup<T: Copy>(table: &[T], aux: u8, what: &str) -> Result<T> {
    table
        .get(aux as usize)
        .copied()
        .ok_or_else(|| PumaError::Encoding { what: format!("invalid {what} sub-opcode {aux}") })
}

/// Decodes one 12-byte instruction.
///
/// # Errors
///
/// Returns [`PumaError::Encoding`] for unknown opcodes, invalid
/// sub-opcodes, or malformed register fields.
pub fn decode(bytes: &[u8; INSTRUCTION_BYTES]) -> Result<Instruction> {
    let x = Fields::from_bytes(bytes);
    Ok(match x.opcode {
        opcode::MVM => Instruction::Mvm { mask: MvmuMask(x.aux), filter: x.f[0], stride: x.f[1] },
        opcode::ALU => Instruction::Alu {
            op: lookup(&AluOp::ALL, x.aux, "ALU")?,
            dest: RegRef::decode(x.f[0])?,
            src1: RegRef::decode(x.f[1])?,
            src2: RegRef::decode(x.f[2])?,
            width: x.f[3],
        },
        opcode::ALU_IMM => Instruction::AluImm {
            op: lookup(&AluImmOp::ALL, x.aux, "ALUimm")?,
            dest: RegRef::decode(x.f[0])?,
            src1: RegRef::decode(x.f[1])?,
            imm: Fixed::from_bits(x.f[2] as i16),
            width: x.f[3],
        },
        opcode::ALU_INT => Instruction::AluInt {
            op: lookup(&ScalarOp::ALL, x.aux, "ALUint")?,
            dest: RegRef::decode(x.f[0])?,
            src1: RegRef::decode(x.f[1])?,
            src2: RegRef::decode(x.f[2])?,
        },
        opcode::SET => Instruction::Set { dest: RegRef::decode(x.f[0])?, imm: x.f[1] as i16 },
        opcode::COPY => Instruction::Copy {
            dest: RegRef::decode(x.f[0])?,
            src: RegRef::decode(x.f[1])?,
            width: x.f[2],
        },
        opcode::LOAD => Instruction::Load {
            dest: RegRef::decode(x.f[0])?,
            addr: MemAddr { base: join_u32(x.f[1], x.f[2]), index: decode_index_reg(x.aux) },
            width: x.f[3],
        },
        opcode::STORE => Instruction::Store {
            src: RegRef::decode(x.f[0])?,
            addr: MemAddr { base: join_u32(x.f[1], x.f[2]), index: decode_index_reg(x.aux) },
            count: x.f[3],
            width: x.f[4],
        },
        opcode::SEND => Instruction::Send {
            addr: MemAddr { base: join_u32(x.f[0], x.f[1]), index: decode_index_reg(x.aux) },
            fifo: (x.f[2] & 0xFF) as u8,
            node: x.f[2] >> 8,
            target: x.f[3],
            width: x.f[4],
        },
        opcode::RECEIVE => Instruction::Receive {
            addr: MemAddr { base: join_u32(x.f[0], x.f[1]), index: decode_index_reg(x.aux) },
            fifo: x.f[2] as u8,
            count: x.f[3],
            width: x.f[4],
        },
        opcode::JUMP => Instruction::Jump { pc: join_u32(x.f[0], x.f[1]) },
        opcode::BRANCH => Instruction::Branch {
            cond: lookup(&BranchCond::ALL, x.aux, "branch")?,
            src1: RegRef::decode(x.f[0])?,
            src2: RegRef::decode(x.f[1])?,
            pc: join_u32(x.f[2], x.f[3]),
        },
        opcode::HALT => Instruction::Halt,
        other => {
            return Err(PumaError::Encoding { what: format!("unknown opcode {other}") });
        }
    })
}

/// Encodes a whole instruction stream into a flat byte vector.
///
/// # Errors
///
/// Propagates the first [`encode`] failure.
pub fn encode_stream(instrs: &[Instruction]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(instrs.len() * INSTRUCTION_BYTES);
    for i in instrs {
        out.extend_from_slice(&encode(i)?);
    }
    Ok(out)
}

/// Decodes a flat byte vector back into instructions.
///
/// # Errors
///
/// Returns [`PumaError::Encoding`] if the length is not a multiple of
/// [`INSTRUCTION_BYTES`] or any instruction fails to decode.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Instruction>> {
    if !bytes.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(PumaError::Encoding {
            what: format!("stream length {} is not a multiple of {INSTRUCTION_BYTES}", bytes.len()),
        });
    }
    bytes
        .chunks_exact(INSTRUCTION_BYTES)
        .map(|chunk| {
            let arr: &[u8; INSTRUCTION_BYTES] = chunk.try_into().expect("chunk size");
            decode(arr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction as I;

    fn samples() -> Vec<Instruction> {
        let r = RegRef::general(7);
        let xi = RegRef::xbar_in(100);
        let xo = RegRef::xbar_out(31);
        vec![
            I::Mvm { mask: MvmuMask(0b11), filter: 5, stride: 1 },
            I::Alu { op: AluOp::Tanh, dest: r, src1: xo, src2: r, width: 128 },
            I::AluImm { op: AluImmOp::Mul, dest: r, src1: r, imm: Fixed::from_f32(0.5), width: 64 },
            I::AluInt { op: ScalarOp::Add, dest: r, src1: r, src2: r },
            I::Set { dest: r, imm: -42 },
            I::Copy { dest: xi, src: xo, width: 128 },
            I::Load { dest: r, addr: MemAddr::absolute(70000), width: 16 },
            I::Load { dest: r, addr: MemAddr::indexed(4, RegRef::general(3)), width: 1 },
            I::Store { addr: MemAddr::absolute(123), src: r, count: 2, width: 128 },
            I::Send { addr: MemAddr::absolute(0), fifo: 15, target: 137, node: 0, width: 128 },
            I::Send { addr: MemAddr::absolute(8), fifo: 2, target: 3, node: 5, width: 16 },
            I::Receive { addr: MemAddr::absolute(256), fifo: 3, count: 1, width: 128 },
            I::Jump { pc: 123456 },
            I::Branch { cond: BranchCond::Lt, src1: r, src2: xi, pc: 99 },
            I::Halt,
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for instr in samples() {
            let bytes = encode(&instr).unwrap();
            assert_eq!(decode(&bytes).unwrap(), instr, "roundtrip failed for {instr:?}");
        }
    }

    #[test]
    fn stream_roundtrips() {
        let instrs = samples();
        let bytes = encode_stream(&instrs).unwrap();
        assert_eq!(bytes.len(), instrs.len() * INSTRUCTION_BYTES);
        assert_eq!(decode_stream(&bytes).unwrap(), instrs);
    }

    #[test]
    fn ragged_stream_rejected() {
        assert!(decode_stream(&[0u8; 13]).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = [0u8; INSTRUCTION_BYTES];
        bytes[0] = 200;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn invalid_subopcode_rejected() {
        let mut bytes = encode(&I::Alu {
            op: AluOp::Add,
            dest: RegRef::general(0),
            src1: RegRef::general(0),
            src2: RegRef::general(0),
            width: 1,
        })
        .unwrap();
        bytes[1] = 250;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn index_register_must_be_small_general() {
        let bad = I::Load {
            dest: RegRef::general(0),
            addr: MemAddr::indexed(0, RegRef::xbar_in(1)),
            width: 1,
        };
        assert!(encode(&bad).is_err());
        let too_big = I::Load {
            dest: RegRef::general(0),
            addr: MemAddr::indexed(0, RegRef::general(255)),
            width: 1,
        };
        assert!(encode(&too_big).is_err());
    }

    #[test]
    fn oversized_send_node_rejected() {
        let bad = I::Send { addr: MemAddr::absolute(0), fifo: 0, target: 0, node: 256, width: 1 };
        assert!(encode(&bad).is_err());
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let instr = I::Set { dest: RegRef::general(1), imm: i16::MIN };
        let bytes = encode(&instr).unwrap();
        assert_eq!(decode(&bytes).unwrap(), instr);
    }
}
