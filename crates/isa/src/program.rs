//! Program containers: everything needed to configure and run a node.
//!
//! A compiled model is a [`MachineImage`]: per-tile [`TileImage`]s (tile
//! program + per-core [`CoreImage`]s with programs and crossbar weights)
//! plus host I/O bindings describing where inputs are written and outputs
//! read in tile shared memory.

use crate::encode::{encode_stream, INSTRUCTION_BYTES};
use crate::instr::{Instruction, InstructionCategory};
use puma_core::error::{PumaError, Result};
use puma_core::ids::{CoreId, TileId};
use puma_core::tensor::FixedMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An instruction stream with validation and statistics helpers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The instructions, executed from index 0.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Wraps an instruction vector.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction and returns its index.
    pub fn push(&mut self, instr: Instruction) -> usize {
        self.instructions.push(instr);
        self.instructions.len() - 1
    }

    /// Encoded size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.instructions.len() * INSTRUCTION_BYTES
    }

    /// Encodes to the binary representation.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures (see [`crate::encode::encode`]).
    pub fn encode(&self) -> Result<Vec<u8>> {
        encode_stream(&self.instructions)
    }

    /// Histogram of instructions by execution-unit category (Fig. 4).
    pub fn category_histogram(&self) -> BTreeMap<InstructionCategory, usize> {
        let mut hist = BTreeMap::new();
        for i in &self.instructions {
            *hist.entry(i.category()).or_insert(0) += 1;
        }
        hist
    }

    /// Structural validation: control-flow targets must be in range and the
    /// final reachable instruction path should be able to halt.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Compile`] for out-of-range branch targets or a
    /// nonempty program lacking any `halt`.
    pub fn validate(&self) -> Result<()> {
        let n = self.instructions.len() as u32;
        for (idx, instr) in self.instructions.iter().enumerate() {
            let target = match instr {
                Instruction::Jump { pc } => Some(*pc),
                Instruction::Branch { pc, .. } => Some(*pc),
                _ => None,
            };
            if let Some(pc) = target {
                if pc >= n {
                    return Err(PumaError::Compile {
                        what: format!("instruction {idx}: branch target {pc} out of range ({n})"),
                    });
                }
            }
        }
        if !self.instructions.is_empty()
            && !self.instructions.iter().any(|i| matches!(i, Instruction::Halt))
        {
            return Err(PumaError::Compile { what: "program never halts".to_string() });
        }
        Ok(())
    }
}

/// Program plus crossbar contents for one core.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreImage {
    /// The core's instruction stream.
    pub program: Program,
    /// Weight matrix programmed into each MVMU (None = unused MVMU).
    /// Written once at configuration time (§3.2.5) and read-only during
    /// execution.
    pub mvmu_weights: Vec<Option<FixedMatrix>>,
}

impl CoreImage {
    /// Creates an image with `mvmus` empty weight slots.
    pub fn new(mvmus: usize) -> Self {
        CoreImage { program: Program::new(), mvmu_weights: vec![None; mvmus] }
    }

    /// Number of MVMUs holding weights.
    pub fn used_mvmus(&self) -> usize {
        self.mvmu_weights.iter().filter(|w| w.is_some()).count()
    }
}

/// Tile program plus its cores.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TileImage {
    /// The tile control unit's send/receive stream (§4: "The tile
    /// instruction memory holds send and receive instructions").
    pub program: Program,
    /// Core images, indexed by [`CoreId`].
    pub cores: Vec<CoreImage>,
}

impl TileImage {
    /// Creates a tile image with `cores` cores of `mvmus` MVMUs each.
    pub fn new(cores: usize, mvmus: usize) -> Self {
        TileImage {
            program: Program::new(),
            cores: (0..cores).map(|_| CoreImage::new(mvmus)).collect(),
        }
    }
}

/// Where the host reads or writes a named vector in tile shared memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoBinding {
    /// Vector name from the model graph.
    pub name: String,
    /// Tile whose shared memory holds the vector.
    pub tile: TileId,
    /// Word address of the first element.
    pub addr: u32,
    /// Number of 16-bit words.
    pub width: usize,
    /// Consumer count the host writes with (inputs only); outputs use 1.
    pub count: u16,
}

/// A fully configured node: everything the simulator needs to run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MachineImage {
    /// Tile images, indexed by [`TileId`].
    pub tiles: Vec<TileImage>,
    /// Host-written input vectors.
    pub inputs: Vec<IoBinding>,
    /// Host-read output vectors.
    pub outputs: Vec<IoBinding>,
}

impl MachineImage {
    /// Creates an image with the given hierarchy dimensions.
    pub fn new(tiles: usize, cores_per_tile: usize, mvmus_per_core: usize) -> Self {
        MachineImage {
            tiles: (0..tiles).map(|_| TileImage::new(cores_per_tile, mvmus_per_core)).collect(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Mutable access to a core image.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn core_mut(&mut self, tile: TileId, core: CoreId) -> &mut CoreImage {
        &mut self.tiles[tile.index()].cores[core.index()]
    }

    /// Shared access to a core image.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn core(&self, tile: TileId, core: CoreId) -> &CoreImage {
        &self.tiles[tile.index()].cores[core.index()]
    }

    /// Total static instructions across all tile and core programs.
    pub fn total_instructions(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| t.program.len() + t.cores.iter().map(|c| c.program.len()).sum::<usize>())
            .sum()
    }

    /// Whole-image category histogram (Fig. 4 input).
    pub fn category_histogram(&self) -> BTreeMap<InstructionCategory, usize> {
        let mut hist = BTreeMap::new();
        for tile in &self.tiles {
            for (cat, n) in tile.program.category_histogram() {
                *hist.entry(cat).or_insert(0) += n;
            }
            for core in &tile.cores {
                for (cat, n) in core.program.category_histogram() {
                    *hist.entry(cat).or_insert(0) += n;
                }
            }
        }
        hist
    }

    /// Number of tiles whose core or tile programs are nonempty.
    pub fn active_tiles(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| !t.program.is_empty() || t.cores.iter().any(|c| !c.program.is_empty()))
            .count()
    }

    /// Validates all programs (see [`Program::validate`]).
    ///
    /// # Errors
    ///
    /// Propagates the first failing program's error.
    pub fn validate(&self) -> Result<()> {
        for tile in &self.tiles {
            tile.program.validate()?;
            for core in &tile.cores {
                core.program.validate()?;
            }
        }
        Ok(())
    }

    /// Total weight bytes programmed into crossbars.
    pub fn weight_bytes(&self) -> u64 {
        self.tiles
            .iter()
            .flat_map(|t| &t.cores)
            .flat_map(|c| &c.mvmu_weights)
            .flatten()
            .map(|w| (w.rows() * w.cols() * 2) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{MemAddr, MvmuMask};
    use crate::reg::RegRef;

    fn mvm() -> Instruction {
        Instruction::Mvm { mask: MvmuMask(1), filter: 0, stride: 0 }
    }

    #[test]
    fn push_returns_index() {
        let mut p = Program::new();
        assert_eq!(p.push(mvm()), 0);
        assert_eq!(p.push(Instruction::Halt), 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_jump() {
        let p = Program::from_instructions(vec![Instruction::Jump { pc: 5 }, Instruction::Halt]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_requires_halt() {
        let p = Program::from_instructions(vec![mvm()]);
        assert!(p.validate().is_err());
        let ok = Program::from_instructions(vec![mvm(), Instruction::Halt]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn empty_program_is_valid() {
        assert!(Program::new().validate().is_ok());
    }

    #[test]
    fn histogram_counts_categories() {
        let p = Program::from_instructions(vec![
            mvm(),
            mvm(),
            Instruction::Load { dest: RegRef::general(0), addr: MemAddr::absolute(0), width: 1 },
            Instruction::Halt,
        ]);
        let h = p.category_histogram();
        assert_eq!(h[&InstructionCategory::Mvm], 2);
        assert_eq!(h[&InstructionCategory::InterCore], 1);
        assert_eq!(h[&InstructionCategory::ControlFlow], 1);
    }

    #[test]
    fn machine_image_counts_everything() {
        let mut img = MachineImage::new(2, 2, 2);
        img.core_mut(TileId::new(0), CoreId::new(1)).program.push(mvm());
        img.tiles[1].program.push(Instruction::Halt);
        assert_eq!(img.total_instructions(), 2);
        assert_eq!(img.active_tiles(), 2);
        assert_eq!(img.category_histogram()[&InstructionCategory::Mvm], 1);
    }

    #[test]
    fn weight_bytes_sums_matrices() {
        let mut img = MachineImage::new(1, 1, 2);
        img.core_mut(TileId::new(0), CoreId::new(0)).mvmu_weights[0] =
            Some(FixedMatrix::zeros(4, 4).unwrap());
        assert_eq!(img.weight_bytes(), 32);
        assert_eq!(img.core(TileId::new(0), CoreId::new(0)).used_mvmus(), 1);
    }

    #[test]
    fn encoded_size_is_instruction_multiple() {
        let p = Program::from_instructions(vec![mvm(), Instruction::Halt]);
        assert_eq!(p.encoded_bytes(), 2 * INSTRUCTION_BYTES);
        assert_eq!(p.encode().unwrap().len(), p.encoded_bytes());
    }
}
