//! Register references.
//!
//! A PUMA core has three register spaces (§5.4 of the paper):
//!
//! - **XbarIn** — written by any non-MVM instruction, read only by the MVM
//!   instruction (feeds the DAC array);
//! - **XbarOut** — written only by the MVM instruction (fed by the ADC
//!   array), read by any non-MVM instruction;
//! - **General** — the ROM-embedded-RAM register file, read and written by
//!   any non-MVM instruction.
//!
//! A [`RegRef`] names one 16-bit word in one of these spaces; vector
//! operands use a base [`RegRef`] plus a width.

use puma_core::error::{PumaError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three per-core register spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegSpace {
    /// Crossbar input registers (DAC-side).
    XbarIn,
    /// Crossbar output registers (ADC-side).
    XbarOut,
    /// General-purpose ROM-embedded-RAM register file.
    General,
}

impl RegSpace {
    /// All spaces, in encoding order.
    pub const ALL: [RegSpace; 3] = [RegSpace::XbarIn, RegSpace::XbarOut, RegSpace::General];

    /// Two-bit encoding tag.
    pub const fn tag(self) -> u16 {
        match self {
            RegSpace::XbarIn => 0,
            RegSpace::XbarOut => 1,
            RegSpace::General => 2,
        }
    }

    /// Decodes a two-bit tag.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Encoding`] for tags 3 and above.
    pub fn from_tag(tag: u16) -> Result<Self> {
        match tag {
            0 => Ok(RegSpace::XbarIn),
            1 => Ok(RegSpace::XbarOut),
            2 => Ok(RegSpace::General),
            other => {
                Err(PumaError::Encoding { what: format!("invalid register space tag {other}") })
            }
        }
    }

    /// Assembly prefix (`xi`, `xo`, `r`).
    pub const fn prefix(self) -> &'static str {
        match self {
            RegSpace::XbarIn => "xi",
            RegSpace::XbarOut => "xo",
            RegSpace::General => "r",
        }
    }
}

impl fmt::Display for RegSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Maximum register index representable in the 14-bit encoding field.
pub const MAX_REG_INDEX: u16 = (1 << 14) - 1;

/// A reference to one 16-bit register word.
///
/// # Examples
///
/// ```
/// use puma_isa::reg::RegRef;
/// let r = RegRef::general(5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(RegRef::decode(r.encode()).unwrap(), r);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegRef {
    /// Which register space the word lives in.
    pub space: RegSpace,
    /// Word index within the space.
    pub index: u16,
}

impl RegRef {
    /// Creates a reference, validating the index fits the encoding.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Encoding`] if `index` exceeds [`MAX_REG_INDEX`].
    pub fn new(space: RegSpace, index: u16) -> Result<Self> {
        if index > MAX_REG_INDEX {
            return Err(PumaError::Encoding {
                what: format!("register index {index} exceeds 14-bit limit"),
            });
        }
        Ok(RegRef { space, index })
    }

    /// An XbarIn register.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MAX_REG_INDEX`].
    pub fn xbar_in(index: u16) -> Self {
        RegRef::new(RegSpace::XbarIn, index).expect("register index in range")
    }

    /// An XbarOut register.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MAX_REG_INDEX`].
    pub fn xbar_out(index: u16) -> Self {
        RegRef::new(RegSpace::XbarOut, index).expect("register index in range")
    }

    /// A general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MAX_REG_INDEX`].
    pub fn general(index: u16) -> Self {
        RegRef::new(RegSpace::General, index).expect("register index in range")
    }

    /// Packs into a 16-bit field: two space bits, fourteen index bits.
    pub fn encode(self) -> u16 {
        (self.space.tag() << 14) | self.index
    }

    /// Unpacks a 16-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`PumaError::Encoding`] for an invalid space tag.
    pub fn decode(raw: u16) -> Result<Self> {
        Ok(RegRef { space: RegSpace::from_tag(raw >> 14)?, index: raw & MAX_REG_INDEX })
    }

    /// The reference `offset` words past this one.
    ///
    /// # Panics
    ///
    /// Panics if the resulting index exceeds [`MAX_REG_INDEX`].
    pub fn offset(self, offset: u16) -> Self {
        RegRef::new(self.space, self.index + offset).expect("register index in range")
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.space.prefix(), self.index)
    }
}

/// Parses a register in assembly syntax (`xi3`, `xo17`, `r200`).
///
/// # Errors
///
/// Returns [`PumaError::Encoding`] if the text is not a register.
pub fn parse_reg(text: &str) -> Result<RegRef> {
    let (space, rest) = if let Some(rest) = text.strip_prefix("xi") {
        (RegSpace::XbarIn, rest)
    } else if let Some(rest) = text.strip_prefix("xo") {
        (RegSpace::XbarOut, rest)
    } else if let Some(rest) = text.strip_prefix('r') {
        (RegSpace::General, rest)
    } else {
        return Err(PumaError::Encoding { what: format!("not a register: {text:?}") });
    };
    let index: u16 = rest
        .parse()
        .map_err(|_| PumaError::Encoding { what: format!("bad register index: {text:?}") })?;
    RegRef::new(space, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for space in RegSpace::ALL {
            for index in [0u16, 1, 100, MAX_REG_INDEX] {
                let r = RegRef::new(space, index).unwrap();
                assert_eq!(RegRef::decode(r.encode()).unwrap(), r);
            }
        }
    }

    #[test]
    fn index_limit_enforced() {
        assert!(RegRef::new(RegSpace::General, MAX_REG_INDEX + 1).is_err());
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(RegRef::xbar_in(3).to_string(), "xi3");
        assert_eq!(RegRef::xbar_out(17).to_string(), "xo17");
        assert_eq!(RegRef::general(200).to_string(), "r200");
    }

    #[test]
    fn parse_matches_display() {
        for text in ["xi0", "xo5", "r123"] {
            assert_eq!(parse_reg(text).unwrap().to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_reg("q7").is_err());
        assert!(parse_reg("r").is_err());
        assert!(parse_reg("xinope").is_err());
    }

    #[test]
    fn bad_space_tag_rejected() {
        assert!(RegRef::decode(0b11 << 14).is_err());
    }

    #[test]
    fn offset_advances_index() {
        assert_eq!(RegRef::general(10).offset(5), RegRef::general(15));
    }
}
