//! Textual assembler and disassembler for PUMA programs.
//!
//! The format is line-oriented; `#` starts a comment. One instruction per
//! line:
//!
//! ```text
//! mvm 3 5 1            # mask filter stride
//! add r0 xo0 r128 128  # binary vector op: dest src1 src2 width
//! tanh r0 xo0 128      # unary vector op: dest src width
//! muli r0 r0 0.5 64    # vector-immediate: dest src imm width
//! iadd r0 r1 r2        # scalar op: dest src1 src2
//! set r0 -42
//! copy xi0 xo0 128
//! load r0 @70000 16
//! load r0 @4+r3 1      # register-indexed address
//! store @123 r7 2 128  # addr src count width
//! send @0 f15 t137 128 # addr fifo target width (intra-node)
//! send @0 f2 t3 16 n1  # ... n<node>: inter-node send to node 1, tile 3
//! recv @256 f3 1 128   # addr fifo count width
//! jmp 12
//! brn lt r7 xi0 99
//! halt
//! ```

use crate::instr::{AluImmOp, AluOp, BranchCond, Instruction, MemAddr, MvmuMask, ScalarOp};
use crate::reg::{parse_reg, RegRef};
use puma_core::error::{PumaError, Result};
use puma_core::fixed::Fixed;

/// Formats one instruction in assembly syntax.
pub fn format_instruction(instr: &Instruction) -> String {
    match *instr {
        Instruction::Mvm { mask, filter, stride } => {
            format!("mvm {} {} {}", mask.0, filter, stride)
        }
        Instruction::Alu { op, dest, src1, src2, width } => {
            if op.is_unary() {
                format!("{} {} {} {}", op.mnemonic(), dest, src1, width)
            } else {
                format!("{} {} {} {} {}", op.mnemonic(), dest, src1, src2, width)
            }
        }
        Instruction::AluImm { op, dest, src1, imm, width } => {
            format!("{} {} {} {} {}", op.mnemonic(), dest, src1, imm.to_f32(), width)
        }
        Instruction::AluInt { op, dest, src1, src2 } => {
            format!("{} {} {} {}", op.mnemonic(), dest, src1, src2)
        }
        Instruction::Set { dest, imm } => format!("set {dest} {imm}"),
        Instruction::Copy { dest, src, width } => format!("copy {dest} {src} {width}"),
        Instruction::Load { dest, addr, width } => format!("load {dest} {addr} {width}"),
        Instruction::Store { addr, src, count, width } => {
            format!("store {addr} {src} {count} {width}")
        }
        Instruction::Send { addr, fifo, target, node, width } => {
            if node == 0 {
                format!("send {addr} f{fifo} t{target} {width}")
            } else {
                format!("send {addr} f{fifo} t{target} {width} n{node}")
            }
        }
        Instruction::Receive { addr, fifo, count, width } => {
            format!("recv {addr} f{fifo} {count} {width}")
        }
        Instruction::Jump { pc } => format!("jmp {pc}"),
        Instruction::Branch { cond, src1, src2, pc } => {
            format!("brn {} {} {} {}", cond.mnemonic(), src1, src2, pc)
        }
        Instruction::Halt => "halt".to_string(),
    }
}

/// Formats a whole program, one instruction per line.
pub fn disassemble(instrs: &[Instruction]) -> String {
    let mut out = String::new();
    for i in instrs {
        out.push_str(&format_instruction(i));
        out.push('\n');
    }
    out
}

fn err(line_no: usize, what: impl Into<String>) -> PumaError {
    PumaError::Encoding { what: format!("line {}: {}", line_no + 1, what.into()) }
}

fn parse_mem(tok: &str, line_no: usize) -> Result<MemAddr> {
    let body = tok
        .strip_prefix('@')
        .ok_or_else(|| err(line_no, format!("expected @address, got {tok:?}")))?;
    match body.split_once('+') {
        None => {
            let base = body.parse().map_err(|_| err(line_no, format!("bad address {tok:?}")))?;
            Ok(MemAddr::absolute(base))
        }
        Some((base, reg)) => {
            let base = base.parse().map_err(|_| err(line_no, format!("bad address {tok:?}")))?;
            Ok(MemAddr::indexed(base, parse_reg(reg)?))
        }
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str, line_no: usize, what: &str) -> Result<T> {
    tok.parse().map_err(|_| err(line_no, format!("bad {what}: {tok:?}")))
}

fn parse_reg_tok(tok: &str, line_no: usize) -> Result<RegRef> {
    parse_reg(tok).map_err(|e| err(line_no, e.to_string()))
}

fn parse_line(line: &str, line_no: usize) -> Result<Option<Instruction>> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mnemonic = toks[0];
    let args = &toks[1..];
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(line_no, format!("{mnemonic} expects {n} operands, got {}", args.len())))
        }
    };

    if let Some(&op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        return if op.is_unary() {
            need(3)?;
            let dest = parse_reg_tok(args[0], line_no)?;
            let src1 = parse_reg_tok(args[1], line_no)?;
            Ok(Some(Instruction::Alu {
                op,
                dest,
                src1,
                src2: src1,
                width: parse_num(args[2], line_no, "width")?,
            }))
        } else {
            need(4)?;
            Ok(Some(Instruction::Alu {
                op,
                dest: parse_reg_tok(args[0], line_no)?,
                src1: parse_reg_tok(args[1], line_no)?,
                src2: parse_reg_tok(args[2], line_no)?,
                width: parse_num(args[3], line_no, "width")?,
            }))
        };
    }
    if let Some(&op) = AluImmOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        need(4)?;
        let imm: f32 = parse_num(args[2], line_no, "immediate")?;
        return Ok(Some(Instruction::AluImm {
            op,
            dest: parse_reg_tok(args[0], line_no)?,
            src1: parse_reg_tok(args[1], line_no)?,
            imm: Fixed::from_f32(imm),
            width: parse_num(args[3], line_no, "width")?,
        }));
    }
    if let Some(&op) = ScalarOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Some(Instruction::AluInt {
            op,
            dest: parse_reg_tok(args[0], line_no)?,
            src1: parse_reg_tok(args[1], line_no)?,
            src2: parse_reg_tok(args[2], line_no)?,
        }));
    }

    let instr = match mnemonic {
        "mvm" => {
            need(3)?;
            Instruction::Mvm {
                mask: MvmuMask(parse_num(args[0], line_no, "mask")?),
                filter: parse_num(args[1], line_no, "filter")?,
                stride: parse_num(args[2], line_no, "stride")?,
            }
        }
        "set" => {
            need(2)?;
            Instruction::Set {
                dest: parse_reg_tok(args[0], line_no)?,
                imm: parse_num(args[1], line_no, "immediate")?,
            }
        }
        "copy" => {
            need(3)?;
            Instruction::Copy {
                dest: parse_reg_tok(args[0], line_no)?,
                src: parse_reg_tok(args[1], line_no)?,
                width: parse_num(args[2], line_no, "width")?,
            }
        }
        "load" => {
            need(3)?;
            Instruction::Load {
                dest: parse_reg_tok(args[0], line_no)?,
                addr: parse_mem(args[1], line_no)?,
                width: parse_num(args[2], line_no, "width")?,
            }
        }
        "store" => {
            need(4)?;
            Instruction::Store {
                addr: parse_mem(args[0], line_no)?,
                src: parse_reg_tok(args[1], line_no)?,
                count: parse_num(args[2], line_no, "count")?,
                width: parse_num(args[3], line_no, "width")?,
            }
        }
        "send" => {
            if args.len() != 4 && args.len() != 5 {
                return Err(err(
                    line_no,
                    format!("send expects 4 or 5 operands, got {}", args.len()),
                ));
            }
            let fifo: u8 = args[1]
                .strip_prefix('f')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, format!("bad fifo {:?}", args[1])))?;
            let target: u16 = args[2]
                .strip_prefix('t')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, format!("bad target {:?}", args[2])))?;
            // A trailing `nK` names the destination node (default: node 0,
            // i.e. an intra-node NoC send).
            let node: u16 = match args.get(4) {
                None => 0,
                Some(tok) => tok
                    .strip_prefix('n')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, format!("bad node {tok:?}")))?,
            };
            Instruction::Send {
                addr: parse_mem(args[0], line_no)?,
                fifo,
                target,
                node,
                width: parse_num(args[3], line_no, "width")?,
            }
        }
        "recv" => {
            need(4)?;
            let fifo: u8 = args[1]
                .strip_prefix('f')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, format!("bad fifo {:?}", args[1])))?;
            Instruction::Receive {
                addr: parse_mem(args[0], line_no)?,
                fifo,
                count: parse_num(args[2], line_no, "count")?,
                width: parse_num(args[3], line_no, "width")?,
            }
        }
        "jmp" => {
            need(1)?;
            Instruction::Jump { pc: parse_num(args[0], line_no, "pc")? }
        }
        "brn" => {
            need(4)?;
            let cond = BranchCond::ALL
                .iter()
                .find(|c| c.mnemonic() == args[0])
                .copied()
                .ok_or_else(|| err(line_no, format!("bad condition {:?}", args[0])))?;
            Instruction::Branch {
                cond,
                src1: parse_reg_tok(args[1], line_no)?,
                src2: parse_reg_tok(args[2], line_no)?,
                pc: parse_num(args[3], line_no, "pc")?,
            }
        }
        "halt" => {
            need(0)?;
            Instruction::Halt
        }
        other => return Err(err(line_no, format!("unknown mnemonic {other:?}"))),
    };
    Ok(Some(instr))
}

/// Parses an assembly listing into instructions.
///
/// # Errors
///
/// Returns [`PumaError::Encoding`] with a line number for the first
/// syntactically invalid line.
///
/// # Examples
///
/// ```
/// # fn main() -> puma_core::Result<()> {
/// let program = puma_isa::asm::assemble("set r0 5\nhalt\n")?;
/// assert_eq!(program.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instruction>> {
    let mut out = Vec::new();
    for (line_no, line) in source.lines().enumerate() {
        if let Some(instr) = parse_line(line, line_no)? {
            out.push(instr);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegRef;

    #[test]
    fn assemble_disassemble_roundtrip() {
        let source = "\
mvm 3 5 1
add r0 xo0 r128 128
tanh r0 xo0 128
muli r0 r0 0.5 64
iadd r0 r1 r2
set r0 -42
copy xi0 xo0 128
load r0 @70000 16
load r0 @4+r3 1
store @123 r7 2 128
send @0 f15 t137 128
send @8 f2 t3 16 n5
recv @256 f3 1 128
jmp 12
brn lt r7 xi0 99
halt
";
        let instrs = assemble(source).unwrap();
        assert_eq!(instrs.len(), 16);
        let text = disassemble(&instrs);
        let again = assemble(&text).unwrap();
        assert_eq!(instrs, again);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let instrs = assemble("# full comment\n\nhalt # trailing\n").unwrap();
        assert_eq!(instrs, vec![Instruction::Halt]);
    }

    #[test]
    fn unary_ops_omit_second_source() {
        let instrs = assemble("relu r0 xo4 32\n").unwrap();
        match instrs[0] {
            Instruction::Alu { op: AluOp::Relu, dest, src1, width, .. } => {
                assert_eq!(dest, RegRef::general(0));
                assert_eq!(src1, RegRef::xbar_out(4));
                assert_eq!(width, 32);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("halt\nbogus r0\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(assemble("add r0 r1 128\n").is_err());
        assert!(assemble("halt now\n").is_err());
    }

    #[test]
    fn bad_tokens_rejected() {
        assert!(assemble("load r0 1234 4\n").is_err()); // missing @
        assert!(assemble("send @0 15 t1 4\n").is_err()); // missing f
        assert!(assemble("send @0 f1 t1 4 2\n").is_err()); // node missing n
        assert!(assemble("brn zz r0 r1 4\n").is_err()); // bad condition
    }
}
