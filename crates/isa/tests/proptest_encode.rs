//! Property tests: every instruction the compiler can emit roundtrips
//! through both the binary encoding and the textual assembler.

use proptest::prelude::*;
use puma_isa::{
    asm, encode, AluImmOp, AluOp, BranchCond, Instruction, MemAddr, MvmuMask, RegRef, ScalarOp,
};

fn reg() -> impl Strategy<Value = RegRef> {
    (0u16..3, 0u16..16383).prop_map(|(space, idx)| match space {
        0 => RegRef::xbar_in(idx),
        1 => RegRef::xbar_out(idx),
        _ => RegRef::general(idx),
    })
}

fn mem() -> impl Strategy<Value = MemAddr> {
    (0u32..100_000, prop::option::of(0u16..255))
        .prop_map(|(base, idx)| MemAddr { base, index: idx.map(RegRef::general) })
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (0u8..=255, 0u16..512, 0u16..512).prop_map(|(m, f, s)| Instruction::Mvm {
            mask: MvmuMask(m),
            filter: f,
            stride: s
        }),
        (0usize..AluOp::ALL.len(), reg(), reg(), reg(), 1u16..1024).prop_map(
            |(op, dest, src1, src2, width)| {
                let op = AluOp::ALL[op];
                let src2 = if op.is_unary() { src1 } else { src2 };
                Instruction::Alu { op, dest, src1, src2, width }
            }
        ),
        (0usize..AluImmOp::ALL.len(), reg(), reg(), any::<i16>(), 1u16..1024).prop_map(
            |(op, dest, src1, bits, width)| Instruction::AluImm {
                op: AluImmOp::ALL[op],
                dest,
                src1,
                imm: puma_core::fixed::Fixed::from_bits(bits),
                width,
            }
        ),
        (0usize..ScalarOp::ALL.len(), reg(), reg(), reg()).prop_map(|(op, dest, src1, src2)| {
            Instruction::AluInt { op: ScalarOp::ALL[op], dest, src1, src2 }
        }),
        (reg(), any::<i16>()).prop_map(|(dest, imm)| Instruction::Set { dest, imm }),
        (reg(), reg(), 1u16..1024).prop_map(|(dest, src, width)| Instruction::Copy {
            dest,
            src,
            width
        }),
        (reg(), mem(), 1u16..512).prop_map(|(dest, addr, width)| Instruction::Load {
            dest,
            addr,
            width
        }),
        (mem(), reg(), 1u16..64, 1u16..512).prop_map(|(addr, src, count, width)| {
            Instruction::Store { addr, src, count, width }
        }),
        (mem(), 0u8..16, 0u16..256, 0u16..=255, 1u16..512).prop_map(
            |(addr, fifo, target, node, width)| Instruction::Send {
                addr,
                fifo,
                target,
                node,
                width
            }
        ),
        (mem(), 0u8..16, 1u16..64, 1u16..512).prop_map(|(addr, fifo, count, width)| {
            Instruction::Receive { addr, fifo, count, width }
        }),
        (0u32..1_000_000).prop_map(|pc| Instruction::Jump { pc }),
        (0usize..BranchCond::ALL.len(), reg(), reg(), 0u32..1_000_000).prop_map(
            |(cond, src1, src2, pc)| Instruction::Branch {
                cond: BranchCond::ALL[cond],
                src1,
                src2,
                pc
            }
        ),
        Just(Instruction::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_roundtrip(instr in instruction()) {
        let bytes = encode::encode(&instr).unwrap();
        prop_assert_eq!(encode::decode(&bytes).unwrap(), instr);
    }

    #[test]
    fn stream_roundtrip(instrs in prop::collection::vec(instruction(), 0..64)) {
        let bytes = encode::encode_stream(&instrs).unwrap();
        prop_assert_eq!(encode::decode_stream(&bytes).unwrap(), instrs);
    }

    /// The assembler parses everything the disassembler prints, except
    /// fixed-point immediates which round-trip through their decimal
    /// display (bit-exact for all representable values).
    #[test]
    fn assembly_roundtrip(instrs in prop::collection::vec(instruction(), 1..32)) {
        let text = asm::disassemble(&instrs);
        let parsed = asm::assemble(&text).unwrap();
        prop_assert_eq!(parsed.len(), instrs.len());
        for (p, i) in parsed.iter().zip(instrs.iter()) {
            match (p, i) {
                (
                    Instruction::AluImm { imm: pi, op: po, dest: pd, src1: ps, width: pw },
                    Instruction::AluImm { imm: ii, op: io, dest: id, src1: is, width: iw },
                ) => {
                    prop_assert_eq!(po, io);
                    prop_assert_eq!(pd, id);
                    prop_assert_eq!(ps, is);
                    prop_assert_eq!(pw, iw);
                    // f32 display of Q4.12 is exact, so bits must match.
                    prop_assert_eq!(pi.to_bits(), ii.to_bits());
                }
                _ => prop_assert_eq!(p, i),
            }
        }
    }

    #[test]
    fn decode_never_panics_on_random_bytes(bytes in prop::array::uniform12(any::<u8>())) {
        let _ = encode::decode(&bytes); // must return Ok or Err, not panic
    }
}
