//! Strategies over the full instruction set (Table 2), for round-trip
//! suites: binary encode/decode, textual assemble/disassemble, and the
//! combined assemble → encode → decode → re-assemble loop.

use proptest::prelude::*;
use puma_isa::{AluImmOp, AluOp, BranchCond, Instruction, MemAddr, MvmuMask, RegRef, ScalarOp};

/// Strategy: any register reference across the three register spaces.
pub fn reg() -> impl Strategy<Value = RegRef> {
    (0u16..3, 0u16..16383).prop_map(|(space, idx)| match space {
        0 => RegRef::xbar_in(idx),
        1 => RegRef::xbar_out(idx),
        _ => RegRef::general(idx),
    })
}

/// Strategy: any direct or register-indexed memory address.
pub fn mem() -> impl Strategy<Value = MemAddr> {
    (0u32..100_000, prop::option::of(0u16..255))
        .prop_map(|(base, idx)| MemAddr { base, index: idx.map(RegRef::general) })
}

/// Strategy: every encodable instruction of the ISA, with operand ranges
/// matching what the compiler can emit.
pub fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (0u8..=255, 0u16..512, 0u16..512).prop_map(|(m, f, s)| Instruction::Mvm {
            mask: MvmuMask(m),
            filter: f,
            stride: s
        }),
        (0usize..AluOp::ALL.len(), reg(), reg(), reg(), 1u16..1024).prop_map(
            |(op, dest, src1, src2, width)| {
                let op = AluOp::ALL[op];
                let src2 = if op.is_unary() { src1 } else { src2 };
                Instruction::Alu { op, dest, src1, src2, width }
            }
        ),
        (0usize..AluImmOp::ALL.len(), reg(), reg(), any::<i16>(), 1u16..1024).prop_map(
            |(op, dest, src1, bits, width)| Instruction::AluImm {
                op: AluImmOp::ALL[op],
                dest,
                src1,
                imm: puma_core::fixed::Fixed::from_bits(bits),
                width,
            }
        ),
        (0usize..ScalarOp::ALL.len(), reg(), reg(), reg()).prop_map(|(op, dest, src1, src2)| {
            Instruction::AluInt { op: ScalarOp::ALL[op], dest, src1, src2 }
        }),
        (reg(), any::<i16>()).prop_map(|(dest, imm)| Instruction::Set { dest, imm }),
        (reg(), reg(), 1u16..1024).prop_map(|(dest, src, width)| Instruction::Copy {
            dest,
            src,
            width
        }),
        (reg(), mem(), 1u16..512).prop_map(|(dest, addr, width)| Instruction::Load {
            dest,
            addr,
            width
        }),
        (mem(), reg(), 1u16..64, 1u16..512)
            .prop_map(|(addr, src, count, width)| Instruction::Store { addr, src, count, width }),
        (mem(), 0u8..16, 0u16..256, 0u16..=255, 1u16..512).prop_map(
            |(addr, fifo, target, node, width)| Instruction::Send {
                addr,
                fifo,
                target,
                node,
                width
            }
        ),
        (mem(), 0u8..16, 1u16..64, 1u16..512).prop_map(|(addr, fifo, count, width)| {
            Instruction::Receive { addr, fifo, count, width }
        }),
        (0u32..1_000_000).prop_map(|pc| Instruction::Jump { pc }),
        (0usize..BranchCond::ALL.len(), reg(), reg(), 0u32..1_000_000).prop_map(
            |(cond, src1, src2, pc)| Instruction::Branch {
                cond: BranchCond::ALL[cond],
                src1,
                src2,
                pc
            }
        ),
        Just(Instruction::Halt),
    ]
}

/// Strategy: a program of 1..`max_len` instructions.
pub fn program(max_len: usize) -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(instruction(), 1..max_len.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn strategy_covers_every_opcode_family() {
        let mut rng = TestRng::from_name("isagen-coverage");
        let s = instruction();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(std::mem::discriminant(&s.generate(&mut rng)));
        }
        // 13 variants in the prop_oneof above.
        assert_eq!(seen.len(), 13, "instruction strategy missed an opcode family");
    }
}
