//! `puma-testkit` — the cross-crate differential test harness.
//!
//! PUMA's credibility rests on three independent implementations of the
//! same semantics agreeing: the compiler + functional simulator, the
//! host-side reference evaluators, and the published tables. This crate
//! packages the machinery every future PR verifies against:
//!
//! - [`harness`] — compile-and-run glue (graph → PUMAsim → outputs) and
//!   fixed-point-tolerance comparison of output maps;
//! - [`modelgen`] — proptest strategies producing random-but-valid
//!   [`Model`](puma_compiler::graph::Model) graphs with MLP/LSTM shapes
//!   (and CNN workload specs) drawn from the Table 5 zoo families;
//! - [`isagen`] — a strategy covering every encodable instruction, for
//!   encode/decode/assemble round-trip suites;
//! - [`golden`] — stdout snapshot checking for the figure/table binaries,
//!   so paper numbers cannot silently drift.
//!
//! Everything is deterministic: the vendored proptest seeds each test from
//! its own name, and all model weights/inputs derive from explicit seeds.
//!
//! # Example: a one-off differential check
//!
//! ```
//! use puma_compiler::graph::Model;
//! use puma_core::tensor::Matrix;
//! use puma_testkit::harness;
//!
//! let mut m = Model::new("demo");
//! let x = m.input("x", 16);
//! let a = m.constant_matrix("A", Matrix::from_fn(16, 16, |r, c| ((r + c) % 5) as f32 * 0.01));
//! let ax = m.mvm(a, x).unwrap();
//! let z = m.relu(ax);
//! m.output("z", z);
//!
//! let inputs = vec![("x".to_string(), vec![0.1; 16])];
//! let got = harness::run_functional(&m, &harness::small_node_config(16), &inputs).unwrap();
//! let want = harness::reference_outputs(&m, &inputs).unwrap();
//! harness::compare_outputs(&got, &want, 0.02).unwrap();
//! ```

#![warn(missing_docs)]

pub mod golden;
pub mod harness;
pub mod isagen;
pub mod modelgen;
