//! Compile-and-run glue shared by the differential suites.
//!
//! Mirrors what `puma::runtime::ModelRunner` does, but lives below the
//! facade crate so every workspace member (and the facade's own tests) can
//! depend on it without a dependency cycle.

use puma_compiler::graph::Model;
use puma_compiler::{compile, fit_config, relocate_image, CompilerOptions, Partitioning};
use puma_core::config::{CoreConfig, MvmuConfig, NodeConfig, TileConfig};
use puma_core::error::{PumaError, Result};
use puma_sim::{ClusterSim, NodeSim, RunStats, SimEngine, SimMode};
use puma_xbar::NoiseModel;
use std::collections::HashMap;

/// The suite-wide default execution engine: `PUMA_ENGINE=reference`,
/// `PUMA_ENGINE=runahead`, or `PUMA_ENGINE=compiled` overrides
/// [`SimEngine::default`], so CI can run the whole differential surface
/// under any engine (the three-engine matrix) without code changes.
///
/// # Panics
///
/// Panics on an unrecognized `PUMA_ENGINE` value — a typo in the CI
/// matrix must fail loudly, not silently collapse the legs onto the
/// default engine.
pub fn default_engine() -> SimEngine {
    match std::env::var("PUMA_ENGINE").as_deref() {
        Err(_) => SimEngine::default(),
        Ok("reference") => SimEngine::Reference,
        Ok("runahead" | "run_ahead" | "run-ahead") => SimEngine::RunAhead,
        Ok("compiled") => SimEngine::Compiled,
        Ok(other) => {
            panic!("unrecognized PUMA_ENGINE {other:?} (use reference|runahead|compiled)")
        }
    }
}

/// The fault kinds every fault-matrix suite knows about, in the order
/// the smoke legs run them.
pub const ALL_FAULT_KINDS: [&str; 4] = ["stuck", "dead_column", "tile_death", "packet"];

/// The fault kinds selected for the fault-matrix suites via
/// `PUMA_FAULTS` — a comma-separated subset of
/// `stuck,dead_column,tile_death,packet`; unset selects all of them, so
/// local `cargo test` always covers the full matrix.
///
/// # Panics
///
/// Panics on an unrecognized kind — a typo in the CI matrix must fail
/// loudly, not silently skip a fault leg.
pub fn fault_kinds() -> Vec<&'static str> {
    match std::env::var("PUMA_FAULTS") {
        Err(_) => ALL_FAULT_KINDS.to_vec(),
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|k| !k.is_empty())
            .map(|k| {
                ALL_FAULT_KINDS.iter().copied().find(|a| *a == k).unwrap_or_else(|| {
                    panic!(
                        "unrecognized PUMA_FAULTS kind {k:?} \
                         (use stuck|dead_column|tile_death|packet)"
                    )
                })
            })
            .collect(),
    }
}

/// True when `kind` is selected by [`fault_kinds`] — fault-matrix tests
/// call this to skip kinds excluded from the current `PUMA_FAULTS` leg.
#[must_use]
pub fn fault_kind_enabled(kind: &str) -> bool {
    fault_kinds().contains(&kind)
}

/// A compact node configuration for fast simulation in tests: `dim`-sized
/// crossbars, 2 MVMUs × 4 cores × 16 tiles.
pub fn small_node_config(dim: usize) -> NodeConfig {
    let mvmu = MvmuConfig { dim, ..MvmuConfig::default() };
    NodeConfig {
        tile: TileConfig {
            core: CoreConfig {
                mvmu,
                mvmus_per_core: 2,
                vfu_lanes: 4,
                instruction_memory_bytes: 32 * 1024,
                register_file_words: 256.max(4 * dim),
            },
            cores_per_tile: 4,
            ..TileConfig::default()
        },
        tiles_per_node: 16,
        ..NodeConfig::default()
    }
}

/// Compiles `model` with `options`, loads it into a functional-mode
/// noiseless simulator, runs one inference, and returns outputs by name.
///
/// # Errors
///
/// Propagates compile and simulator faults; reports missing or misshaped
/// inputs as [`PumaError::Execution`]/[`PumaError::ShapeMismatch`].
pub fn run_functional_with_options(
    model: &Model,
    cfg: &NodeConfig,
    options: &CompilerOptions,
    inputs: &[(String, Vec<f32>)],
) -> Result<HashMap<String, Vec<f32>>> {
    run_with_engine(model, cfg, options, inputs, SimMode::Functional, default_engine())
        .map(|(outputs, _)| outputs)
}

/// Compiles `model` and runs one inference on a chosen [`SimMode`] and
/// [`SimEngine`], returning the outputs **and** the run statistics — the
/// entry point of the engine-differential suites, which pin `RunStats`
/// equality between [`SimEngine::Reference`] and [`SimEngine::RunAhead`].
///
/// # Errors
///
/// Propagates compile and simulator faults; reports missing or misshaped
/// inputs as [`PumaError::Execution`]/[`PumaError::ShapeMismatch`].
pub fn run_with_engine(
    model: &Model,
    cfg: &NodeConfig,
    options: &CompilerOptions,
    inputs: &[(String, Vec<f32>)],
    mode: SimMode,
    engine: SimEngine,
) -> Result<(HashMap<String, Vec<f32>>, RunStats)> {
    let compiled = compile(model, cfg, options)?;
    let cfg = fit_config(cfg, &compiled);
    let mut sim = NodeSim::new(cfg, &compiled.image, mode, &NoiseModel::noiseless())?;
    sim.set_engine(engine);
    write_model_inputs(&compiled, inputs, &mut |name, values| sim.write_input(name, values))?;
    sim.run()?;
    let out = read_model_outputs(&compiled, &|name| sim.read_output(name))?;
    Ok((out, sim.stats().clone()))
}

/// Writes the compiled model's constant data and chunked logical inputs
/// through `write` — the one copy of the host-side input contract
/// (missing-input and shape errors included) shared by the single-node
/// and cluster paths. Multi-tenant callers pass a closure that prefixes
/// each binding name with the tenant (the `{tenant}:{binding}` contract
/// of `puma_compiler::compose_fabric`).
///
/// # Errors
///
/// [`PumaError::Execution`] for a missing logical input,
/// [`PumaError::ShapeMismatch`] for a wrong-width one, plus whatever
/// `write` itself reports.
pub fn write_model_inputs(
    compiled: &puma_compiler::CompiledModel,
    inputs: &[(String, Vec<f32>)],
    write: &mut dyn FnMut(&str, &[f32]) -> Result<()>,
) -> Result<()> {
    for (binding, values) in &compiled.const_data {
        write(&binding.name, values)?;
    }
    for io in &compiled.inputs {
        let (_, data) = inputs
            .iter()
            .find(|(n, _)| *n == io.name)
            .ok_or_else(|| PumaError::Execution { what: format!("missing input {:?}", io.name) })?;
        if data.len() != io.width {
            return Err(PumaError::ShapeMismatch { expected: io.width, actual: data.len() });
        }
        let mut offset = 0;
        for (chunk, &w) in io.chunks.iter().zip(io.chunk_widths.iter()) {
            write(chunk, &data[offset..offset + w])?;
            offset += w;
        }
    }
    Ok(())
}

/// Reassembles the compiled model's logical outputs from their chunks
/// through `read` (counterpart of [`write_model_inputs`]).
///
/// # Errors
///
/// Propagates whatever `read` reports for a chunk.
pub fn read_model_outputs(
    compiled: &puma_compiler::CompiledModel,
    read: &dyn Fn(&str) -> Result<Vec<f32>>,
) -> Result<HashMap<String, Vec<f32>>> {
    let mut out = HashMap::new();
    for io in &compiled.outputs {
        let mut data = Vec::with_capacity(io.width);
        for chunk in &io.chunks {
            data.extend(read(chunk)?);
        }
        out.insert(io.name.clone(), data);
    }
    Ok(out)
}

/// Compiles `model`, relocates its image to tile base `base`
/// ([`puma_compiler::relocate_image`]), widens the node's tile capacity
/// to hold it, and runs one inference — the entry point of the
/// relocation differential suite, which pins outputs **and**
/// [`RunStats`] bit-identical to the base-0 run (relocation is a pure
/// renumbering, and the prepended idle tiles contribute zero events,
/// cycles, and energy). `base == 0` is the plain single-node run.
///
/// # Errors
///
/// Propagates compile, relocation, and simulator faults; reports missing
/// or misshaped inputs as
/// [`PumaError::Execution`]/[`PumaError::ShapeMismatch`].
pub fn run_relocated(
    model: &Model,
    cfg: &NodeConfig,
    options: &CompilerOptions,
    inputs: &[(String, Vec<f32>)],
    base: usize,
    mode: SimMode,
    engine: SimEngine,
) -> Result<(HashMap<String, Vec<f32>>, RunStats)> {
    let compiled = compile(model, cfg, options)?;
    let mut cfg = fit_config(cfg, &compiled);
    // Capacity widening only; the simulator's behavior and statistics
    // never depend on unoccupied tile capacity.
    cfg.tiles_per_node = cfg.tiles_per_node.max(compiled.stats.tiles_used + base);
    let image = relocate_image(&compiled.image, base)?;
    let mut sim = NodeSim::new(cfg, &image, mode, &NoiseModel::noiseless())?;
    sim.set_engine(engine);
    write_model_inputs(&compiled, inputs, &mut |name, values| sim.write_input(name, values))?;
    sim.run()?;
    let out = read_model_outputs(&compiled, &|name| sim.read_output(name))?;
    Ok((out, sim.stats().clone()))
}

/// Compiles `model` sharded across `nodes` simulated nodes
/// ([`Partitioning::Sharded`]), runs one inference on a
/// [`puma_sim::ClusterSim`], and returns outputs and aggregate cluster
/// statistics — the entry point of the sharded differential suites, which
/// pin bit-identical outputs against the single-node run.
///
/// # Errors
///
/// Propagates compile, shard, and simulator faults; reports missing or
/// misshaped inputs as [`PumaError::Execution`]/[`PumaError::ShapeMismatch`].
pub fn run_sharded(
    model: &Model,
    cfg: &NodeConfig,
    options: &CompilerOptions,
    inputs: &[(String, Vec<f32>)],
    nodes: usize,
    mode: SimMode,
    engine: SimEngine,
) -> Result<(HashMap<String, Vec<f32>>, RunStats)> {
    let options = CompilerOptions { partitioning: Partitioning::Sharded { nodes }, ..*options };
    let compiled = compile(model, cfg, &options)?;
    let cfg = fit_config(cfg, &compiled);
    let images = compiled.shard()?;
    let mut sim = ClusterSim::new(cfg, &images, mode, &NoiseModel::noiseless())?;
    sim.set_engine(engine);
    write_model_inputs(&compiled, inputs, &mut |name, values| sim.write_input(name, values))?;
    sim.run()?;
    let out = read_model_outputs(&compiled, &|name| sim.read_output(name))?;
    Ok((out, sim.stats().clone()))
}

/// [`run_functional_with_options`] with default compiler options.
///
/// # Errors
///
/// See [`run_functional_with_options`].
pub fn run_functional(
    model: &Model,
    cfg: &NodeConfig,
    inputs: &[(String, Vec<f32>)],
) -> Result<HashMap<String, Vec<f32>>> {
    run_functional_with_options(model, cfg, &CompilerOptions::default(), inputs)
}

/// Evaluates the model's host-side f32 reference semantics on `inputs`.
///
/// # Errors
///
/// Propagates reference-evaluator failures (unknown inputs, bad shapes).
pub fn reference_outputs(
    model: &Model,
    inputs: &[(String, Vec<f32>)],
) -> Result<HashMap<String, Vec<f32>>> {
    let map: HashMap<String, Vec<f32>> = inputs.iter().cloned().collect();
    model.evaluate_reference(&map)
}

/// Asserts two output maps agree within `tolerance` on every element.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence (missing
/// output, width mismatch, or out-of-tolerance element).
pub fn compare_outputs(
    got: &HashMap<String, Vec<f32>>,
    want: &HashMap<String, Vec<f32>>,
    tolerance: f32,
) -> std::result::Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("output count mismatch: got {}, want {}", got.len(), want.len()));
    }
    for (name, want_vals) in want {
        let got_vals = got.get(name).ok_or_else(|| format!("missing output {name:?}"))?;
        if got_vals.len() != want_vals.len() {
            return Err(format!(
                "output {name:?} width mismatch: got {}, want {}",
                got_vals.len(),
                want_vals.len()
            ));
        }
        for (i, (g, w)) in got_vals.iter().zip(want_vals.iter()).enumerate() {
            if (g - w).abs() > tolerance {
                return Err(format!(
                    "output {name:?}[{i}]: simulated {g} vs reference {w} (|Δ| = {} > {tolerance})",
                    (g - w).abs()
                ));
            }
        }
    }
    Ok(())
}

/// Deterministic pseudo-random fill in `[-0.5, 0.5)` for test inputs —
/// keeps generated cases reproducible from a single integer seed.
pub fn seeded_values(width: usize, seed: u64) -> Vec<f32> {
    (0..width)
        .map(|i| {
            let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            (h % 1024) as f32 / 1024.0 - 0.5
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_values_are_deterministic_and_bounded() {
        let a = seeded_values(64, 7);
        let b = seeded_values(64, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-0.5..0.5).contains(v)));
        assert_ne!(a, seeded_values(64, 8));
    }

    #[test]
    fn compare_outputs_reports_divergence() {
        let mut got = HashMap::new();
        let mut want = HashMap::new();
        got.insert("z".to_string(), vec![0.1, 0.2]);
        want.insert("z".to_string(), vec![0.1, 0.5]);
        let err = compare_outputs(&got, &want, 0.05).unwrap_err();
        assert!(err.contains("z"), "{err}");
        assert!(compare_outputs(&got, &got.clone(), 0.0).is_ok());
    }
}
