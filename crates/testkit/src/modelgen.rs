//! Strategies generating random-but-valid model graphs.
//!
//! Shapes are drawn from scaled-down versions of the Table 5 zoo families
//! (MLP-64-150-150-14, the NMT/BigLSTM LSTM stacks, LeNet-5) so the fuzzed
//! cases exercise the same structures the paper evaluates — multi-chunk
//! tiling, reductions across crossbars, transcendental activations,
//! recurrent weight reuse — while staying small enough to simulate in
//! milliseconds.

use crate::harness::seeded_values;
use proptest::prelude::*;
use puma_compiler::graph::Model;
use puma_nn::layers::{dense, lstm_network, WeightFactory};
use puma_nn::spec::{Activation, LayerSpec, WorkloadClass, WorkloadSpec};
use puma_nn::zoo;

/// A generated graph model together with its inputs and the fixed-point
/// tolerance appropriate for its depth.
#[derive(Debug)]
pub struct ModelCase {
    /// The graph, with all weights materialized.
    pub model: Model,
    /// Named input vectors covering every model input.
    pub inputs: Vec<(String, Vec<f32>)>,
    /// Comparison tolerance (grows with graph depth: every fixed-point
    /// stage contributes up to ~1 ULP of Q4.12 error).
    pub tolerance: f32,
}

/// Layer widths sampled by the MLP family — the Table 5 MLP dimensions
/// (64-150-150-14 and friends) scaled into the fast-sim regime.
const MLP_WIDTHS: [usize; 6] = [8, 14, 26, 32, 48, 64];

/// Strategy: random MLPs — 1-3 dense layers with random activations,
/// widths drawn from [`MLP_WIDTHS`].
pub fn mlp_case() -> impl Strategy<Value = ModelCase> {
    (
        prop::sample::select(MLP_WIDTHS.to_vec()),
        prop::collection::vec(
            (
                prop::sample::select(MLP_WIDTHS.to_vec()),
                prop::sample::select(vec![
                    Activation::None,
                    Activation::Relu,
                    Activation::Sigmoid,
                    Activation::Tanh,
                ]),
            ),
            1..4,
        ),
        0u64..1_000_000,
    )
        .prop_map(|(input_width, layers, seed)| {
            let mut model = Model::new("fuzz-mlp");
            let mut weights = WeightFactory::materialized(seed);
            let x = model.input("x", input_width);
            let mut cur = x;
            for (i, (width, act)) in layers.iter().enumerate() {
                cur = dense(&mut model, &mut weights, &format!("fc{i}"), cur, *width, *act)
                    .expect("dense layer widths are consistent by construction");
            }
            model.output("y", cur);
            ModelCase {
                model,
                inputs: vec![("x".to_string(), seeded_values(input_width, seed))],
                tolerance: 0.02 * layers.len() as f32 + 0.01,
            }
        })
}

/// Strategy: random unrolled LSTMs — 1-2 layers, 1-2 time steps, hidden
/// sizes from the scaled-down NMT family, with an optional projection
/// (the BigLSTM structure).
pub fn lstm_case() -> impl Strategy<Value = ModelCase> {
    (
        prop::sample::select(vec![8usize, 16, 26]),
        prop::sample::select(vec![8usize, 16]),
        prop::option::of(prop::sample::select(vec![8usize, 12])),
        1usize..=2,
        1usize..=2,
        0u64..1_000_000,
    )
        .prop_map(|(input_width, hidden, projection, layers, steps, seed)| {
            let mut model = Model::new("fuzz-lstm");
            let mut weights = WeightFactory::materialized(seed);
            let layer_shapes: Vec<(usize, Option<usize>)> =
                (0..layers).map(|_| (hidden, projection)).collect();
            let outs = lstm_network(&mut model, &mut weights, input_width, &layer_shapes, steps)
                .expect("lstm widths are consistent by construction");
            model.output("h_final", *outs.last().expect("steps >= 1"));
            let inputs = (0..steps)
                .map(|t| (format!("x{t}"), seeded_values(input_width, seed ^ t as u64)))
                .collect();
            ModelCase {
                model,
                inputs,
                // Each unrolled step chains ~6 fixed-point stages per layer.
                tolerance: 0.03 * (layers * steps) as f32 + 0.02,
            }
        })
}

/// Strategy: either family, for suites that just want "a valid model".
pub fn any_case() -> impl Strategy<Value = ModelCase> {
    prop_oneof![mlp_case(), lstm_case()]
}

/// Strategy: random LeNet-class CNN workload specs for the looped CNN
/// code generator (`puma_nn::cnn::build_cnn`) — conv → optional pool →
/// dense head, shaped like a shrunken Lenet5 from the zoo.
///
/// These are *specs*, not graphs: CNNs compile through the control-flow
/// code generator rather than the dataflow graph compiler, and their
/// differential reference is `CompiledCnn::reference`.
pub fn cnn_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop::sample::select(vec![7usize, 8, 10, 12]),
        prop::sample::select(vec![2usize, 3, 4]),
        prop::sample::select(vec![3usize, 5]),
        any::<bool>(),
        prop::sample::select(vec![4usize, 6, 10]),
    )
        .prop_map(|(side, conv_out, kernel, pool, fc_out)| {
            let mut layers = vec![LayerSpec::Conv {
                input: 1,
                output: conv_out,
                kernel,
                stride: 1,
                height: side,
                width: side,
            }];
            let (mut h, mut w) = puma_nn::spec::conv_output(side, side, kernel, 1);
            if pool && h >= 4 && h % 2 == 0 && w % 2 == 0 {
                layers.push(LayerSpec::Pool { channels: conv_out, window: 2, height: h, width: w });
                h /= 2;
                w /= 2;
            }
            layers.push(LayerSpec::Fc {
                input: conv_out * h * w,
                output: fc_out,
                act: Activation::None,
            });
            WorkloadSpec {
                name: format!("fuzz-cnn-{side}x{side}-k{kernel}-m{conv_out}"),
                class: WorkloadClass::Cnn,
                layers,
                seq_len: 1,
            }
        })
}

/// The graph-compilable Table 5 / Fig. 4 zoo entries small enough for
/// functional simulation in a test, with their per-model tolerances.
pub fn simulable_zoo_cases(seed: u64) -> Vec<ModelCase> {
    ["MLP-64-150-150-14", "LSTM-26-120-61", "RNN-26-93-61"]
        .iter()
        .map(|name| {
            let spec = zoo::spec(name);
            let mut weights = WeightFactory::materialized(seed);
            let model = zoo::build_graph_model(&spec, &mut weights, Some(2))
                .expect("zoo model builds")
                .expect("non-CNN zoo entries are graph workloads");
            let inputs = model
                .nodes()
                .iter()
                .filter_map(|n| match &n.op {
                    puma_compiler::graph::VecOp::Input { name } => Some((name.clone(), n.width)),
                    _ => None,
                })
                .enumerate()
                .map(|(i, (name, width))| (name, seeded_values(width, seed ^ i as u64)))
                .collect();
            ModelCase { model, inputs, tolerance: 0.15 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn generated_models_validate() {
        let mut rng = TestRng::from_name("modelgen-validate");
        let s = any_case();
        for _ in 0..16 {
            let case = s.generate(&mut rng);
            case.model.validate().expect("generated model is valid");
            assert!(!case.inputs.is_empty());
        }
    }

    #[test]
    fn cnn_specs_have_consistent_shapes() {
        let mut rng = TestRng::from_name("modelgen-cnn");
        let s = cnn_spec();
        for _ in 0..32 {
            let spec = s.generate(&mut rng);
            assert_eq!(spec.class, WorkloadClass::Cnn);
            assert!(spec.layers.len() >= 2);
            assert!(spec.params() > 0);
        }
    }
}
