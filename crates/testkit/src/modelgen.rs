//! Strategies generating random-but-valid model graphs.
//!
//! Shapes are drawn from scaled-down versions of the Table 5 zoo families
//! (MLP-64-150-150-14, the NMT/BigLSTM LSTM stacks, LeNet-5) so the fuzzed
//! cases exercise the same structures the paper evaluates — multi-chunk
//! tiling, reductions across crossbars, transcendental activations,
//! recurrent weight reuse — while staying small enough to simulate in
//! milliseconds.

use crate::harness::seeded_values;
use proptest::prelude::*;
use puma_compiler::graph::Model;
use puma_nn::layers::{dense, lstm_network, WeightFactory};
use puma_nn::spec::{Activation, LayerSpec, WorkloadClass, WorkloadSpec};
use puma_nn::zoo;

/// A generated graph model together with its inputs and the fixed-point
/// tolerance appropriate for its depth.
#[derive(Debug)]
pub struct ModelCase {
    /// The graph, with all weights materialized.
    pub model: Model,
    /// Named input vectors covering every model input.
    pub inputs: Vec<(String, Vec<f32>)>,
    /// Comparison tolerance (grows with graph depth: every fixed-point
    /// stage contributes up to ~1 ULP of Q4.12 error).
    pub tolerance: f32,
}

/// Layer widths sampled by the MLP family — the Table 5 MLP dimensions
/// (64-150-150-14 and friends) scaled into the fast-sim regime.
const MLP_WIDTHS: [usize; 6] = [8, 14, 26, 32, 48, 64];

/// Strategy: random MLPs — 1-3 dense layers with random activations,
/// widths drawn from `MLP_WIDTHS`.
pub fn mlp_case() -> impl Strategy<Value = ModelCase> {
    (
        prop::sample::select(MLP_WIDTHS.to_vec()),
        prop::collection::vec(
            (
                prop::sample::select(MLP_WIDTHS.to_vec()),
                prop::sample::select(vec![
                    Activation::None,
                    Activation::Relu,
                    Activation::Sigmoid,
                    Activation::Tanh,
                ]),
            ),
            1..4,
        ),
        0u64..1_000_000,
    )
        .prop_map(|(input_width, layers, seed)| {
            let mut model = Model::new("fuzz-mlp");
            let mut weights = WeightFactory::materialized(seed);
            let x = model.input("x", input_width);
            let mut cur = x;
            for (i, (width, act)) in layers.iter().enumerate() {
                cur = dense(&mut model, &mut weights, &format!("fc{i}"), cur, *width, *act)
                    .expect("dense layer widths are consistent by construction");
            }
            model.output("y", cur);
            ModelCase {
                model,
                inputs: vec![("x".to_string(), seeded_values(input_width, seed))],
                tolerance: 0.02 * layers.len() as f32 + 0.01,
            }
        })
}

/// Strategy: random unrolled LSTMs — 1-2 layers, 1-2 time steps, hidden
/// sizes from the scaled-down NMT family, with an optional projection
/// (the BigLSTM structure).
pub fn lstm_case() -> impl Strategy<Value = ModelCase> {
    (
        prop::sample::select(vec![8usize, 16, 26]),
        prop::sample::select(vec![8usize, 16]),
        prop::option::of(prop::sample::select(vec![8usize, 12])),
        1usize..=2,
        1usize..=2,
        0u64..1_000_000,
    )
        .prop_map(|(input_width, hidden, projection, layers, steps, seed)| {
            let mut model = Model::new("fuzz-lstm");
            let mut weights = WeightFactory::materialized(seed);
            let layer_shapes: Vec<(usize, Option<usize>)> =
                (0..layers).map(|_| (hidden, projection)).collect();
            let outs = lstm_network(&mut model, &mut weights, input_width, &layer_shapes, steps)
                .expect("lstm widths are consistent by construction");
            model.output("h_final", *outs.last().expect("steps >= 1"));
            let inputs = (0..steps)
                .map(|t| (format!("x{t}"), seeded_values(input_width, seed ^ t as u64)))
                .collect();
            ModelCase {
                model,
                inputs,
                // Each unrolled step chains ~6 fixed-point stages per layer.
                tolerance: 0.03 * (layers * steps) as f32 + 0.02,
            }
        })
}

/// Strategy: either family, for suites that just want "a valid model".
pub fn any_case() -> impl Strategy<Value = ModelCase> {
    prop_oneof![mlp_case(), lstm_case()]
}

/// Strategy: random LeNet-class CNN workload specs for the looped CNN
/// code generator (`puma_nn::cnn::build_cnn`) — conv → optional pool →
/// dense head, shaped like a shrunken Lenet5 from the zoo.
///
/// These are *specs*, not graphs: CNNs compile through the control-flow
/// code generator rather than the dataflow graph compiler, and their
/// differential reference is `CompiledCnn::reference`.
pub fn cnn_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop::sample::select(vec![7usize, 8, 10, 12]),
        prop::sample::select(vec![2usize, 3, 4]),
        prop::sample::select(vec![3usize, 5]),
        any::<bool>(),
        prop::sample::select(vec![4usize, 6, 10]),
    )
        .prop_map(|(side, conv_out, kernel, pool, fc_out)| {
            let mut layers = vec![LayerSpec::Conv {
                input: 1,
                output: conv_out,
                kernel,
                stride: 1,
                height: side,
                width: side,
            }];
            let (mut h, mut w) = puma_nn::spec::conv_output(side, side, kernel, 1);
            if pool && h >= 4 && h % 2 == 0 && w % 2 == 0 {
                layers.push(LayerSpec::Pool { channels: conv_out, window: 2, height: h, width: w });
                h /= 2;
                w /= 2;
            }
            layers.push(LayerSpec::Fc {
                input: conv_out * h * w,
                output: fc_out,
                act: Activation::None,
            });
            WorkloadSpec {
                name: format!("fuzz-cnn-{side}x{side}-k{kernel}-m{conv_out}"),
                class: WorkloadClass::Cnn,
                layers,
                seq_len: 1,
            }
        })
}

/// The graph-compilable Table 5 / Fig. 4 zoo entries small enough for
/// functional simulation in a test, with their per-model tolerances.
pub fn simulable_zoo_cases(seed: u64) -> Vec<ModelCase> {
    ["MLP-64-150-150-14", "LSTM-26-120-61", "RNN-26-93-61"]
        .iter()
        .map(|name| {
            let spec = zoo::spec(name);
            let mut weights = WeightFactory::materialized(seed);
            let model = zoo::build_graph_model(&spec, &mut weights, Some(2))
                .expect("zoo model builds")
                .expect("non-CNN zoo entries are graph workloads");
            let inputs = model
                .nodes()
                .iter()
                .filter_map(|n| match &n.op {
                    puma_compiler::graph::VecOp::Input { name } => Some((name.clone(), n.width)),
                    _ => None,
                })
                .enumerate()
                .map(|(i, (name, width))| (name, seeded_values(width, seed ^ i as u64)))
                .collect();
            ModelCase { model, inputs, tolerance: 0.15 }
        })
        .collect()
}

// --- Synchronization-stress images -----------------------------------
//
// Hand-assembled machine images whose instruction mix is *dominated* by
// the Fig. 6 attribute-buffer protocol and FIFO send/receive — the
// traffic class where a run-ahead scheduler earns (or loses) its keep.
// They are deadlock-free by construction, produce deterministic outputs
// (payloads bounce host inputs or per-core `rand` streams), and are used
// by the `sync_stress` differential suite and the sync-bound
// `bench_sim_throughput` scenario.

use puma_core::ids::{CoreId, TileId};
use puma_isa::{asm, MachineImage, Program};

fn asm_program(source: &str) -> Program {
    Program::from_instructions(asm::assemble(source).expect("generated asm is valid"))
}

/// A token ring over `tiles` tile control units: the host seeds `width`
/// words at tile 0, and each of `rounds` rounds relays them around the
/// ring over FIFO sends/receives (every hop consumes and re-produces the
/// words through the attribute buffer). Output `token` at tile 0 equals
/// the input after the final wrap-around.
///
/// # Panics
///
/// Panics on fewer than 2 tiles (a ring needs a neighbour).
pub fn pingpong_ring_image(tiles: usize, rounds: usize, width: usize) -> MachineImage {
    assert!(tiles >= 2, "a ring needs at least two tiles");
    let mut img = MachineImage::new(tiles, 1, 1);
    for t in 0..tiles {
        let mut src = String::new();
        for _ in 0..rounds {
            if t == 0 {
                // Tile 0 launches the token, then waits for the wrap.
                src.push_str(&format!("send @0 f0 t1 {width}\n"));
                src.push_str(&format!("recv @0 f1 1 {width}\n"));
            } else {
                let (fifo, next) = if t + 1 == tiles { ("f1", 0) } else { ("f0", t + 1) };
                src.push_str(&format!("recv @0 f0 1 {width}\n"));
                src.push_str(&format!("send @0 {fifo} t{next} {width}\n"));
            }
        }
        src.push_str("halt\n");
        img.tiles[t].program = asm_program(&src);
    }
    img.inputs.push(puma_isa::IoBinding {
        name: "token".into(),
        tile: TileId::new(0),
        addr: 0,
        width,
        count: 1,
    });
    img.outputs.push(puma_isa::IoBinding {
        name: "token".into(),
        tile: TileId::new(0),
        addr: 0,
        width,
        count: 1,
    });
    img
}

/// One producer core fanning out to `consumers` sibling cores through a
/// multi-consumer attribute-buffer word range: each round the producer
/// stores a fresh `rand` vector with consumer count = `consumers`, and
/// every consumer loads (consume-reads) it once and accumulates. With
/// `double_buffer` the round alternates between two address ranges so
/// production overlaps consumption. Outputs `acc0..accN` hold each
/// consumer's accumulated sum.
///
/// # Panics
///
/// Panics on zero consumers or zero rounds.
pub fn fanout_image(
    consumers: usize,
    rounds: usize,
    width: usize,
    double_buffer: bool,
) -> MachineImage {
    assert!(consumers >= 1 && rounds >= 1, "fan-out needs consumers and rounds");
    let buffers = if double_buffer { 2 } else { 1 };
    let mut img = MachineImage::new(1, consumers + 1, 1);
    let addr = |round: usize| (round % buffers) * width;
    let mut src = String::new();
    for r in 0..rounds {
        src.push_str(&format!("rand r0 r0 {width}\n"));
        src.push_str(&format!("store @{} r0 {consumers} {width}\n", addr(r)));
    }
    src.push_str("halt\n");
    img.core_mut(TileId::new(0), CoreId::new(0)).program = asm_program(&src);
    let out_base = 2 * width; // past both buffers
    for c in 0..consumers {
        let mut src = String::new();
        for r in 0..rounds {
            src.push_str(&format!("load r0 @{} {width}\n", addr(r)));
            src.push_str(&format!("add r8 r8 r0 {width}\n"));
        }
        src.push_str(&format!("store @{} r8 1 {width}\n", out_base + c * width));
        src.push_str("halt\n");
        img.core_mut(TileId::new(0), CoreId::new(c + 1)).program = asm_program(&src);
        img.outputs.push(puma_isa::IoBinding {
            name: format!("acc{c}"),
            tile: TileId::new(0),
            addr: (out_base + c * width) as u32,
            width,
            count: 1,
        });
    }
    img
}

/// A producer/consumer lattice: a chain of `tiles` stages where stage 0's
/// core generates `rand` data, every stage's control unit relays over the
/// NoC (or, in the sharded variant, the chip-to-chip interconnect), and
/// every inner stage's core consume-loads, re-produces, and accumulates.
/// The last stage exposes its accumulator as output `sum`.
///
/// With `nodes > 1` the chain is cut into `nodes` contiguous shards of
/// `tiles / nodes` tiles (one image per node, tiles renumbered locally,
/// cross-shard sends carrying explicit node ids) — outputs are
/// bit-identical to the single-node image because per-core `rand`
/// streams depend only on the core index.
///
/// # Panics
///
/// Panics unless `tiles ≥ 2` and `nodes` evenly divides `tiles`.
pub fn lattice_images(
    tiles: usize,
    rounds: usize,
    width: usize,
    nodes: usize,
) -> Vec<MachineImage> {
    assert!(tiles >= 2, "a lattice needs at least two stages");
    assert!(nodes >= 1 && tiles.is_multiple_of(nodes), "nodes must evenly divide tiles");
    let per_node = tiles / nodes;
    let mut images: Vec<MachineImage> =
        (0..nodes).map(|_| MachineImage::new(per_node, 1, 1)).collect();
    for t in 0..tiles {
        let (node, local) = (t / per_node, t % per_node);
        let img = &mut images[node];
        let last = t + 1 == tiles;
        // Control unit: relay the stage's produced words down the chain.
        let mut ctl = String::new();
        for _ in 0..rounds {
            if t > 0 {
                ctl.push_str(&format!("recv @0 f0 1 {width}\n"));
            }
            if !last {
                let (dst_node, dst_local) = ((t + 1) / per_node, (t + 1) % per_node);
                let from = if t == 0 { 0 } else { 2 * width };
                ctl.push_str(&format!("send @{from} f0 t{dst_local} {width} n{dst_node}\n"));
            }
        }
        ctl.push_str("halt\n");
        img.tiles[local].program = asm_program(&ctl);
        // Core: stage 0 produces, inner stages transform + re-produce,
        // the last stage accumulates into the output.
        let mut core = String::new();
        for _ in 0..rounds {
            if t == 0 {
                core.push_str(&format!("rand r0 r0 {width}\n"));
                core.push_str(&format!("store @0 r0 1 {width}\n"));
            } else {
                core.push_str(&format!("load r0 @0 {width}\n"));
                core.push_str(&format!("add r8 r8 r0 {width}\n"));
                if !last {
                    core.push_str(&format!("store @{} r0 1 {width}\n", 2 * width));
                }
            }
        }
        if last {
            core.push_str(&format!("store @{} r8 1 {width}\n", 4 * width));
        }
        core.push_str("halt\n");
        img.core_mut(TileId::new(local), CoreId::new(0)).program = asm_program(&core);
        if last {
            img.outputs.push(puma_isa::IoBinding {
                name: "sum".into(),
                tile: TileId::new(local),
                addr: (4 * width) as u32,
                width,
                count: 1,
            });
        }
    }
    images
}

/// `tiles` independent copies of the [`fanout_image`] pattern, one per
/// tile — the NMTL3-class synchronization regime: many tiles concurrently
/// running producer/consumer handoffs over the attribute buffer, with no
/// cross-tile traffic to couple them. (Contrast with [`lattice_images`],
/// a *serial* token wave where at most a few stages are ever runnable —
/// the run-ahead engine's structural worst case.) Outputs
/// `t<tile>acc<consumer>` hold each consumer's accumulated sum.
///
/// # Panics
///
/// Panics on zero tiles/consumers/rounds.
pub fn sync_fabric_image(
    tiles: usize,
    consumers: usize,
    rounds: usize,
    width: usize,
) -> MachineImage {
    assert!(tiles >= 1 && consumers >= 1 && rounds >= 1, "fabric needs tiles/consumers/rounds");
    let mut img = MachineImage::new(tiles, consumers + 1, 1);
    let addr = |round: usize| (round % 2) * width;
    let out_base = 2 * width;
    for t in 0..tiles {
        let mut src = String::new();
        for r in 0..rounds {
            src.push_str(&format!("rand r0 r0 {width}\n"));
            src.push_str(&format!("store @{} r0 {consumers} {width}\n", addr(r)));
        }
        src.push_str("halt\n");
        img.core_mut(TileId::new(t), CoreId::new(0)).program = asm_program(&src);
        for c in 0..consumers {
            let mut src = String::new();
            for r in 0..rounds {
                src.push_str(&format!("load r0 @{} {width}\n", addr(r)));
                src.push_str(&format!("add r8 r8 r0 {width}\n"));
            }
            src.push_str(&format!("store @{} r8 1 {width}\n", out_base + c * width));
            src.push_str("halt\n");
            img.core_mut(TileId::new(t), CoreId::new(c + 1)).program = asm_program(&src);
            img.outputs.push(puma_isa::IoBinding {
                name: format!("t{t}acc{c}"),
                tile: TileId::new(t),
                addr: (out_base + c * width) as u32,
                width,
                count: 1,
            });
        }
    }
    img
}

/// `pairs` independent producer/consumer core pairs per tile, each pair
/// double-buffering through its **own disjoint word range** of the
/// tile's attribute buffer — the exact shape the word-range conflict
/// groups exist for: every pair is its own conflict group, so the
/// run-ahead scheduler may admit one pair's instructions past another
/// pair's pending deliveries on the *same tile*. Outputs `t<tile>p<pair>`
/// hold each consumer's accumulated sum.
///
/// # Panics
///
/// Panics on zero tiles/pairs/rounds.
pub fn disjoint_pairs_image(
    tiles: usize,
    pairs: usize,
    rounds: usize,
    width: usize,
) -> MachineImage {
    assert!(tiles >= 1 && pairs >= 1 && rounds >= 1, "pairs image needs tiles/pairs/rounds");
    let mut img = MachineImage::new(tiles, 2 * pairs, 1);
    let out_base = pairs * 2 * width;
    for t in 0..tiles {
        for p in 0..pairs {
            let base = p * 2 * width;
            let addr = |round: usize| base + (round % 2) * width;
            let mut src = String::new();
            for r in 0..rounds {
                src.push_str(&format!("rand r0 r0 {width}\n"));
                src.push_str(&format!("store @{} r0 1 {width}\n", addr(r)));
            }
            src.push_str("halt\n");
            img.core_mut(TileId::new(t), CoreId::new(2 * p)).program = asm_program(&src);
            let mut src = String::new();
            for r in 0..rounds {
                src.push_str(&format!("load r0 @{} {width}\n", addr(r)));
                src.push_str(&format!("add r8 r8 r0 {width}\n"));
            }
            src.push_str(&format!("store @{} r8 1 {width}\n", out_base + p * width));
            src.push_str("halt\n");
            img.core_mut(TileId::new(t), CoreId::new(2 * p + 1)).program = asm_program(&src);
            img.outputs.push(puma_isa::IoBinding {
                name: format!("t{t}p{p}"),
                tile: TileId::new(t),
                addr: (out_base + p * width) as u32,
                width,
                count: 1,
            });
        }
    }
    img
}

/// The adversarial counterpart of [`disjoint_pairs_image`]: two cores per
/// tile strictly alternating over **partially overlapping** word ranges.
/// The ping core produces `[0, width)`; the pong core consumes it and
/// replies on `[width/2, width/2 + width)` — the upper half of the ping
/// range is reused by the reply, so both cores share one conflict group
/// and the word-range horizon must *refuse* run-ahead between them.
/// Alternation is forced by the attribute protocol itself (each store's
/// precondition only holds after the opposite core's consume), so the
/// schedule — and therefore outputs and stats — is engine-invariant.
/// Outputs `t<tile>ping` / `t<tile>pong` hold the two accumulators.
///
/// # Panics
///
/// Panics on zero tiles/rounds or `width < 2` (a `width/2` shift of a
/// one-word range does not overlap, it coincides — and two consumers
/// racing for the same produced word would be schedule-dependent).
pub fn overlap_pingpong_image(tiles: usize, rounds: usize, width: usize) -> MachineImage {
    assert!(tiles >= 1 && rounds >= 1, "ping-pong image needs tiles/rounds");
    assert!(width >= 2, "partial overlap needs width >= 2");
    let reply = width / 2;
    let out_base = 4 * width;
    let mut img = MachineImage::new(tiles, 2, 1);
    for t in 0..tiles {
        let mut ping = String::new();
        for _ in 0..rounds {
            ping.push_str(&format!("rand r0 r0 {width}\n"));
            ping.push_str(&format!("store @0 r0 1 {width}\n"));
            ping.push_str(&format!("load r0 @{reply} {width}\n"));
            ping.push_str(&format!("add r8 r8 r0 {width}\n"));
        }
        ping.push_str(&format!("store @{out_base} r8 1 {width}\n"));
        ping.push_str("halt\n");
        img.core_mut(TileId::new(t), CoreId::new(0)).program = asm_program(&ping);
        let mut pong = String::new();
        for _ in 0..rounds {
            pong.push_str(&format!("load r0 @0 {width}\n"));
            pong.push_str(&format!("add r8 r8 r0 {width}\n"));
            pong.push_str(&format!("store @{reply} r0 1 {width}\n"));
        }
        pong.push_str(&format!("store @{} r8 1 {width}\n", out_base + width));
        pong.push_str("halt\n");
        img.core_mut(TileId::new(t), CoreId::new(1)).program = asm_program(&pong);
        for (name, slot) in [("ping", 0), ("pong", 1)] {
            img.outputs.push(puma_isa::IoBinding {
                name: format!("t{t}{name}"),
                tile: TileId::new(t),
                addr: (out_base + slot * width) as u32,
                width,
                count: 1,
            });
        }
    }
    img
}

/// [`disjoint_pairs_image`] sharded across `nodes` single-tile nodes and
/// coupled by a cross-node token chain over the tile control units: node
/// 0's extra seeder core produces a fresh token each round, every
/// control unit relays it over the chip-to-chip link (send consumes,
/// receive re-produces at the same address), and the last node's extra
/// core consume-accumulates it. The chain gives [`crate::harness`]-style
/// cluster and pipeline runs real inter-node traffic while the pairs
/// exercise same-tile disjoint ranges. Outputs: `chain` (the token
/// accumulator at the last node) and `n<node>p<pair>` pair accumulators.
///
/// # Panics
///
/// Panics unless `nodes >= 2` and pairs/rounds/width are nonzero.
pub fn disjoint_shard_images(
    nodes: usize,
    pairs: usize,
    rounds: usize,
    width: usize,
) -> Vec<MachineImage> {
    assert!(nodes >= 2, "a chain needs at least two nodes");
    assert!(pairs >= 1 && rounds >= 1 && width >= 1, "shards need pairs/rounds/width");
    let token = pairs * 3 * width; // past the pair buffers and accumulators
    let extra = 2 * pairs; // core index of the seeder / chain accumulator
    let mut images = Vec::with_capacity(nodes);
    for node in 0..nodes {
        let last = node + 1 == nodes;
        let mut img = disjoint_pairs_image(1, pairs, rounds, width);
        for o in &mut img.outputs {
            o.name = o.name.replacen("t0", &format!("n{node}"), 1);
        }
        if node == 0 {
            img.tiles[0].cores.push(puma_isa::CoreImage::new(1));
            let mut src = String::new();
            for _ in 0..rounds {
                src.push_str(&format!("rand r0 r0 {width}\n"));
                src.push_str(&format!("store @{token} r0 1 {width}\n"));
            }
            src.push_str("halt\n");
            img.core_mut(TileId::new(0), CoreId::new(extra)).program = asm_program(&src);
        }
        if last {
            img.tiles[0].cores.push(puma_isa::CoreImage::new(1));
            let mut src = String::new();
            for _ in 0..rounds {
                src.push_str(&format!("load r0 @{token} {width}\n"));
                src.push_str(&format!("add r8 r8 r0 {width}\n"));
            }
            src.push_str(&format!("store @{} r8 1 {width}\n", token + width));
            src.push_str("halt\n");
            img.core_mut(TileId::new(0), CoreId::new(extra)).program = asm_program(&src);
            img.outputs.push(puma_isa::IoBinding {
                name: "chain".into(),
                tile: TileId::new(0),
                addr: (token + width) as u32,
                width,
                count: 1,
            });
        }
        let mut ctl = String::new();
        for _ in 0..rounds {
            if node > 0 {
                ctl.push_str(&format!("recv @{token} f0 1 {width}\n"));
            }
            if !last {
                ctl.push_str(&format!("send @{token} f0 t0 {width} n{}\n", node + 1));
            }
        }
        ctl.push_str("halt\n");
        img.tiles[0].program = asm_program(&ctl);
        images.push(img);
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn generated_models_validate() {
        let mut rng = TestRng::from_name("modelgen-validate");
        let s = any_case();
        for _ in 0..16 {
            let case = s.generate(&mut rng);
            case.model.validate().expect("generated model is valid");
            assert!(!case.inputs.is_empty());
        }
    }

    #[test]
    fn cnn_specs_have_consistent_shapes() {
        let mut rng = TestRng::from_name("modelgen-cnn");
        let s = cnn_spec();
        for _ in 0..32 {
            let spec = s.generate(&mut rng);
            assert_eq!(spec.class, WorkloadClass::Cnn);
            assert!(spec.layers.len() >= 2);
            assert!(spec.params() > 0);
        }
    }
}
