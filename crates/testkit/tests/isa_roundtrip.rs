//! ISA round-trip properties over the full Table 2 instruction set:
//! binary encode/decode, the assembler loop, and the combined
//! assemble → encode → decode → re-assemble identity.

use proptest::prelude::*;
use puma_isa::{asm, encode, Instruction};
use puma_testkit::isagen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = id for single instructions.
    #[test]
    fn encode_decode_roundtrip(instr in isagen::instruction()) {
        let bytes = encode::encode(&instr).unwrap();
        prop_assert_eq!(bytes.len(), encode::INSTRUCTION_BYTES);
        prop_assert_eq!(encode::decode(&bytes).unwrap(), instr);
    }

    /// The full loop the compiler and simulator rely on: a textual
    /// program survives assembly, binary encoding, decoding, and
    /// re-assembly of its disassembly, bit for bit.
    #[test]
    fn assemble_encode_decode_reassemble(instrs in isagen::program(24)) {
        // Text → instructions.
        let text = asm::disassemble(&instrs);
        let assembled = asm::assemble(&text).unwrap();
        prop_assert_eq!(assembled.len(), instrs.len());

        // Instructions → bytes → instructions.
        let bytes = encode::encode_stream(&assembled).unwrap();
        prop_assert_eq!(bytes.len(), assembled.len() * encode::INSTRUCTION_BYTES);
        let decoded = encode::decode_stream(&bytes).unwrap();
        prop_assert_eq!(&decoded, &assembled);

        // Decoded instructions → text → instructions: fixed-point
        // immediates round-trip through their decimal display bit-exactly,
        // so full equality must hold.
        let reassembled = asm::assemble(&asm::disassemble(&decoded)).unwrap();
        for (r, a) in reassembled.iter().zip(assembled.iter()) {
            match (r, a) {
                (
                    Instruction::AluImm { imm: ri, op: ro, dest: rd, src1: rs, width: rw },
                    Instruction::AluImm { imm: ai, op: ao, dest: ad, src1: as_, width: aw },
                ) => {
                    prop_assert_eq!(ro, ao);
                    prop_assert_eq!(rd, ad);
                    prop_assert_eq!(rs, as_);
                    prop_assert_eq!(rw, aw);
                    prop_assert_eq!(ri.to_bits(), ai.to_bits());
                }
                _ => prop_assert_eq!(r, a),
            }
        }
    }

    /// Decoding arbitrary bytes never panics — it returns Ok or Err.
    #[test]
    fn decode_total_on_random_bytes(bytes in prop::array::uniform12(any::<u8>())) {
        let _ = encode::decode(&bytes);
    }
}
