//! Fault-injection determinism suite: the [`puma_core::config::FaultPlan`]
//! contract has two halves, and both are differential.
//!
//! **Inertness** — an *empty* plan (any seed, any delay constant, but no
//! active fault) must be bit-identical to a plan-absent config: same
//! outputs, same [`puma_sim::RunStats`], on every engine and on every
//! host (standalone node, sharded cluster, pipelined serving).
//!
//! **Replay** — a fixed `(FaultPlan, seed)` with active faults is a
//! pure function of the virtual schedule: bit-exact across the three
//! engines, across serving worker counts, and across host-thread
//! counts. Fault realizations are *injected* nondeterminism, never
//! *host* nondeterminism.
//!
//! The suite honours `PUMA_ENGINE`, so CI's three-engine matrix pins
//! both halves under the reference, run-ahead, and compiled engines.

use puma::runtime::{Disposition, ServeRunner};
use puma_compiler::{CompilerOptions, Partitioning};
use puma_core::config::{FaultPlan, NodeConfig};
use puma_core::timing::TrafficPattern;
use puma_sim::{SimEngine, SimMode};
use puma_testkit::harness::{
    default_engine, run_sharded, run_with_engine, seeded_values, small_node_config,
};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;

const ENGINES: [SimEngine; 3] = [SimEngine::Reference, SimEngine::RunAhead, SimEngine::Compiled];

/// An empty plan that is *not* the default value: nonzero seed and a
/// custom delay constant, but no active fault. Must be indistinguishable
/// from a plan-absent config.
fn empty_but_nondefault_plan() -> FaultPlan {
    FaultPlan { seed: 0xDEAD_BEEF, packet_delay_cycles: 7, ..FaultPlan::none() }
}

fn with_faults(cfg: &NodeConfig, faults: FaultPlan) -> NodeConfig {
    NodeConfig { faults, ..*cfg }
}

/// Standalone node: an empty fault plan is bit-identical to a
/// plan-absent config — outputs *and* `RunStats` — on all three engines.
#[test]
fn empty_plan_matches_plan_absent_on_every_engine() {
    let case = &modelgen::simulable_zoo_cases(7)[0];
    let cfg = small_node_config(8);
    let faulty_cfg = with_faults(&cfg, empty_but_nondefault_plan());
    assert!(faulty_cfg.faults.is_empty());
    for engine in ENGINES {
        let options = CompilerOptions::default();
        let absent =
            run_with_engine(&case.model, &cfg, &options, &case.inputs, SimMode::Functional, engine)
                .expect("plan-absent run");
        let empty = run_with_engine(
            &case.model,
            &faulty_cfg,
            &options,
            &case.inputs,
            SimMode::Functional,
            engine,
        )
        .expect("empty-plan run");
        assert_eq!(absent.0, empty.0, "{engine:?}: outputs must be bit-identical");
        assert_eq!(absent.1, empty.1, "{engine:?}: RunStats must be bit-identical");
    }
}

/// Sharded cluster: the empty plan stays inert across the internode
/// interconnect (the packet-fault arm must not perturb anything).
#[test]
fn empty_plan_matches_plan_absent_on_cluster() {
    let case = &modelgen::simulable_zoo_cases(11)[0];
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let engine = default_engine();
    let absent =
        run_sharded(&case.model, &cfg, &options, &case.inputs, 2, SimMode::Functional, engine)
            .expect("plan-absent sharded run");
    let empty = run_sharded(
        &case.model,
        &with_faults(&cfg, empty_but_nondefault_plan()),
        &options,
        &case.inputs,
        2,
        SimMode::Functional,
        engine,
    )
    .expect("empty-plan sharded run");
    assert_eq!(absent.0, empty.0, "sharded outputs must be bit-identical");
    assert_eq!(absent.1, empty.1, "sharded RunStats must be bit-identical");
}

/// Pipelined serving: the empty plan leaves the whole served stream —
/// dispositions, outputs, latencies, aggregate stats — bit-identical.
#[test]
fn empty_plan_matches_plan_absent_on_pipeline_serving() {
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = small_node_config(8);
    let options = CompilerOptions {
        partitioning: Partitioning::Sharded { nodes: 2 },
        ..CompilerOptions::default()
    };
    let requests: Vec<puma::runtime::BatchRequest> = (0..4)
        .map(|r| {
            puma::runtime::BatchRequest::new(
                case.inputs
                    .iter()
                    .enumerate()
                    .map(|(i, (name, values))| {
                        (name.clone(), seeded_values(values.len(), 900 + 13 * r + i as u64))
                    })
                    .collect(),
            )
        })
        .collect();
    let serve = |cfg: &NodeConfig| {
        let runner = ServeRunner::new(
            &case.model,
            cfg,
            &options,
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .expect("pipelined runner")
        .with_engine(default_engine())
        .with_pipeline(true);
        runner.serve_pattern(&requests, &TrafficPattern::Uniform { interval: 2000 }).expect("serve")
    };
    let absent = serve(&cfg);
    let empty = serve(&with_faults(&cfg, empty_but_nondefault_plan()));
    assert_eq!(absent.latency, empty.latency);
    assert_eq!(absent.stats, empty.stats);
    assert_eq!(absent.shed, empty.shed);
    assert_eq!(absent.timed_out, empty.timed_out);
    assert_eq!(absent.makespan_cycles, empty.makespan_cycles);
    for (i, (a, b)) in absent.results.iter().zip(empty.results.iter()).enumerate() {
        match (&a.disposition, &b.disposition) {
            (
                Disposition::Completed { result: ra, start: sa, finish: fa },
                Disposition::Completed { result: rb, start: sb, finish: fb },
            ) => {
                assert_eq!(ra.outputs, rb.outputs, "request {i} outputs diverged");
                assert_eq!((sa, fa), (sb, fb), "request {i} schedule diverged");
            }
            (a, b) => panic!("request {i}: expected completions, got {a:?} vs {b:?}"),
        }
    }
}

/// Crossbar cell faults (stuck cells + dead columns) replay bit-exactly
/// across the three engines: outputs *and* `RunStats` (including the
/// fault counters) agree, and a different seed yields an independent
/// realization.
#[test]
fn cell_faults_replay_bit_exactly_across_engines() {
    let case = &modelgen::simulable_zoo_cases(13)[0];
    let cfg = small_node_config(8);
    let faulty = with_faults(
        &cfg,
        FaultPlan { stuck_cell_rate: 0.10, dead_column_rate: 0.05, seed: 9, ..FaultPlan::none() },
    );
    let options = CompilerOptions::default();
    let runs: Vec<_> = ENGINES
        .iter()
        .map(|&engine| {
            run_with_engine(
                &case.model,
                &faulty,
                &options,
                &case.inputs,
                SimMode::Functional,
                engine,
            )
            .expect("faulty run")
        })
        .collect();
    assert!(runs[0].1.faulted_mvm_activations > 0, "cell faults must actually fire");
    for (run, engine) in runs.iter().zip(ENGINES).skip(1) {
        assert_eq!(runs[0].0, run.0, "{engine:?}: faulty outputs must replay bit-exactly");
        assert_eq!(runs[0].1, run.1, "{engine:?}: faulty RunStats must replay bit-exactly");
    }
    // A different seed is an independent realization of the same rates.
    let reseeded = run_with_engine(
        &case.model,
        &with_faults(&cfg, FaultPlan { seed: 10, ..faulty.faults }),
        &options,
        &case.inputs,
        SimMode::Functional,
        default_engine(),
    )
    .expect("reseeded run");
    assert_ne!(runs[0].0, reseeded.0, "a new seed must draw a new fault realization");
}

/// A faulty serve is a pure function of the virtual schedule: worker
/// count and host-thread count change nothing but wall time.
#[test]
fn faulty_serve_replays_across_worker_and_thread_counts() {
    let case = &modelgen::simulable_zoo_cases(19)[0];
    let cfg = with_faults(
        &small_node_config(8),
        FaultPlan { stuck_cell_rate: 0.08, dead_column_rate: 0.04, seed: 21, ..FaultPlan::none() },
    );
    let requests: Vec<puma::runtime::BatchRequest> = (0..5)
        .map(|r| {
            puma::runtime::BatchRequest::new(
                case.inputs
                    .iter()
                    .enumerate()
                    .map(|(i, (name, values))| {
                        (name.clone(), seeded_values(values.len(), 4400 + 17 * r + i as u64))
                    })
                    .collect(),
            )
        })
        .collect();
    let pattern = TrafficPattern::Uniform { interval: 1500 };
    let outcomes: Vec<_> = [(1usize, 1usize), (2, 3), (5, 2)]
        .iter()
        .map(|&(workers, threads)| {
            ServeRunner::functional(&case.model, &cfg)
                .expect("serve runner")
                .with_engine(default_engine())
                .with_workers(workers)
                .with_host_threads(threads)
                .serve_pattern(&requests, &pattern)
                .expect("faulty serve")
        })
        .collect();
    assert!(outcomes[0].stats.faulted_mvm_activations > 0, "cell faults must actually fire");
    for outcome in &outcomes[1..] {
        assert_eq!(outcomes[0].stats, outcome.stats, "stats must not depend on host parallelism");
        for (i, (a, b)) in outcomes[0].results.iter().zip(outcome.results.iter()).enumerate() {
            match (&a.disposition, &b.disposition) {
                (
                    Disposition::Completed { result: ra, .. },
                    Disposition::Completed { result: rb, .. },
                ) => {
                    assert_eq!(ra.outputs, rb.outputs, "request {i} outputs diverged");
                    assert_eq!(ra.stats, rb.stats, "request {i} stats diverged");
                }
                (a, b) => panic!("request {i}: expected completions, got {a:?} vs {b:?}"),
            }
        }
    }
}

/// Interconnect delay faults on a sharded cluster replay bit-exactly and
/// never corrupt data: outputs match the fault-free run, only timing
/// (and the delay counter) moves.
#[test]
fn packet_delay_faults_replay_and_preserve_outputs() {
    let case = &modelgen::simulable_zoo_cases(23)[0];
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let engine = default_engine();
    let clean =
        run_sharded(&case.model, &cfg, &options, &case.inputs, 2, SimMode::Functional, engine)
            .expect("clean sharded run");
    let delayed_cfg = with_faults(
        &cfg,
        FaultPlan { packet_delay_rate: 1.0, packet_delay_cycles: 64, seed: 5, ..FaultPlan::none() },
    );
    let a = run_sharded(
        &case.model,
        &delayed_cfg,
        &options,
        &case.inputs,
        2,
        SimMode::Functional,
        engine,
    )
    .expect("delayed sharded run");
    let b = run_sharded(
        &case.model,
        &delayed_cfg,
        &options,
        &case.inputs,
        2,
        SimMode::Functional,
        engine,
    )
    .expect("delayed sharded replay");
    assert_eq!(a.0, b.0, "delayed runs must replay bit-exactly");
    assert_eq!(a.1, b.1, "delayed RunStats must replay bit-exactly");
    assert!(a.1.packets_delayed > 0, "delay faults must actually fire");
    assert_eq!(a.0, clean.0, "delays reorder time, never data");
    assert!(a.1.cycles >= clean.1.cycles, "a delayed packet cannot make the run faster");
}
