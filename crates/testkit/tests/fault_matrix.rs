//! Fault-matrix smoke suite: every fault kind of
//! [`puma_core::config::FaultPlan`] fires at least once and surfaces
//! through its designed channel — degraded-but-completed runs with
//! fault counters for crossbar cell faults, typed
//! [`PumaError::FaultedTile`] / [`PumaError::Deadlock`] diagnoses for
//! tile death and packet loss, and watchdog-aborted dispositions on the
//! serving path.
//!
//! Each test is keyed to one fault kind and skips itself when
//! `PUMA_FAULTS` (comma-separated subset of
//! `stuck,dead_column,tile_death,packet`) excludes that kind, so CI can
//! shard the matrix; an unset `PUMA_FAULTS` runs everything. The suite
//! honours `PUMA_ENGINE` like every differential suite.

use puma::runtime::{Disposition, RequestError, ServeRunner};
use puma_compiler::{compile, CompilerOptions, Partitioning};
use puma_core::config::{FaultPlan, NodeConfig, TileDeath};
use puma_core::error::PumaError;
use puma_core::timing::TrafficPattern;
use puma_sim::SimMode;
use puma_testkit::harness::{
    default_engine, fault_kind_enabled, run_sharded, run_with_engine, small_node_config,
};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;

fn with_faults(cfg: &NodeConfig, faults: FaultPlan) -> NodeConfig {
    NodeConfig { faults, ..*cfg }
}

/// Runs one zoo case clean and with `faults`, returning both outcomes.
#[allow(clippy::type_complexity)]
fn clean_and_faulty(
    case_seed: u64,
    faults: FaultPlan,
) -> (
    (std::collections::HashMap<String, Vec<f32>>, puma_sim::RunStats),
    (std::collections::HashMap<String, Vec<f32>>, puma_sim::RunStats),
) {
    let case = &modelgen::simulable_zoo_cases(case_seed)[0];
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let clean = run_with_engine(
        &case.model,
        &cfg,
        &options,
        &case.inputs,
        SimMode::Functional,
        default_engine(),
    )
    .expect("clean run");
    let faulty = run_with_engine(
        &case.model,
        &with_faults(&cfg, faults),
        &options,
        &case.inputs,
        SimMode::Functional,
        default_engine(),
    )
    .expect("faulty run");
    (clean, faulty)
}

/// Stuck-at crossbar cells: the run completes (graceful degradation),
/// the fault counter fires, and the outputs move off the clean run.
#[test]
fn stuck_cells_degrade_outputs_without_aborting() {
    if !fault_kind_enabled("stuck") {
        return;
    }
    let faults = FaultPlan { stuck_cell_rate: 0.15, seed: 3, ..FaultPlan::none() };
    let (clean, faulty) = clean_and_faulty(31, faults);
    assert!(faulty.1.faulted_mvm_activations > 0, "stuck cells must route MVMs to the faulty path");
    assert_eq!(clean.1.faulted_mvm_activations, 0);
    assert_ne!(clean.0, faulty.0, "a 15% stuck-cell rate must perturb the outputs");
    assert_eq!(
        clean.1.mvmu_activations, faulty.1.mvmu_activations,
        "cell faults perturb values, never the schedule"
    );
}

/// Dead crossbar columns: same contract as stuck cells, independent knob.
#[test]
fn dead_columns_degrade_outputs_without_aborting() {
    if !fault_kind_enabled("dead_column") {
        return;
    }
    let faults = FaultPlan { dead_column_rate: 0.25, seed: 4, ..FaultPlan::none() };
    let (clean, faulty) = clean_and_faulty(37, faults);
    assert!(
        faulty.1.faulted_mvm_activations > 0,
        "dead columns must route MVMs to the faulty path"
    );
    assert_ne!(clean.0, faulty.0, "a 25% dead-column rate must perturb the outputs");
    assert_eq!(clean.1.mvmu_activations, faulty.1.mvmu_activations);
}

/// Hard tile death mid-run: the run aborts with the typed
/// [`PumaError::FaultedTile`] naming the dead tile and death cycle —
/// identically on all three engines (the death is keyed to
/// engine-invariant instruction-start timestamps).
#[test]
fn tile_death_surfaces_as_typed_fault_on_every_engine() {
    if !fault_kind_enabled("tile_death") {
        return;
    }
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let compiled = compile(&case.model, &cfg, &options).expect("compiles");
    assert!(compiled.stats.tiles_used >= 2, "the death diagnosis needs a blocked co-tile");
    let dead = TileDeath { node: 0, tile: 0, at_cycle: 100 };
    let faulty = with_faults(&cfg, FaultPlan { tile_death: Some(dead), ..FaultPlan::none() });
    for engine in [
        puma_sim::SimEngine::Reference,
        puma_sim::SimEngine::RunAhead,
        puma_sim::SimEngine::Compiled,
    ] {
        let err = run_with_engine(
            &case.model,
            &faulty,
            &options,
            &case.inputs,
            SimMode::Functional,
            engine,
        )
        .expect_err("a dead tile must abort the run");
        match err {
            PumaError::FaultedTile { node, tile, cycle, what } => {
                assert_eq!((node, tile, cycle), (0, 0, 100), "{engine:?}");
                assert!(!what.is_empty(), "{engine:?}: diagnosis must name the blocked agents");
            }
            other => panic!("{engine:?}: expected FaultedTile, got {other}"),
        }
    }
}

/// The serving path turns the same death into per-request typed
/// [`RequestError::FaultedTile`] dispositions instead of failing the
/// whole serve call.
#[test]
fn tile_death_fails_served_requests_with_typed_dispositions() {
    if !fault_kind_enabled("tile_death") {
        return;
    }
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = with_faults(
        &small_node_config(8),
        FaultPlan {
            tile_death: Some(TileDeath { node: 0, tile: 0, at_cycle: 100 }),
            ..FaultPlan::none()
        },
    );
    let requests: Vec<puma::runtime::BatchRequest> =
        (0..3).map(|_| puma::runtime::BatchRequest::new(case.inputs.clone())).collect();
    let runner = ServeRunner::functional(&case.model, &cfg)
        .expect("serve runner")
        .with_engine(default_engine())
        .with_workers(2);
    let outcome = runner.serve_pattern(&requests, &TrafficPattern::Batch).expect("serve succeeds");
    assert_eq!(outcome.completed(), 0);
    for (i, served) in outcome.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Failed(RequestError::FaultedTile { node, tile, .. }) => {
                assert_eq!((*node, *tile), (0, 0), "request {i}");
            }
            other => panic!("request {i}: expected a FaultedTile disposition, got {other:?}"),
        }
    }
}

/// Total packet loss on the shard boundary starves the receiving node:
/// the run aborts with the typed deadlock diagnosis (there is no tile
/// death to blame), never hangs.
#[test]
fn packet_loss_starves_the_cluster_into_typed_deadlock() {
    if !fault_kind_enabled("packet") {
        return;
    }
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = with_faults(
        &small_node_config(8),
        FaultPlan { packet_loss_rate: 1.0, seed: 6, ..FaultPlan::none() },
    );
    let err = run_sharded(
        &case.model,
        &cfg,
        &CompilerOptions::default(),
        &case.inputs,
        2,
        SimMode::Functional,
        default_engine(),
    )
    .expect_err("total packet loss must starve the receiver");
    assert!(
        matches!(err, PumaError::Deadlock { .. }),
        "expected a typed deadlock diagnosis, got {err}"
    );
}

/// Duplicated packets are deterministic: two runs of the same seed agree
/// bit-exactly, and the duplicate counter fires.
#[test]
fn packet_duplicates_replay_deterministically() {
    if !fault_kind_enabled("packet") {
        return;
    }
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = with_faults(
        &small_node_config(8),
        FaultPlan { packet_duplicate_rate: 1.0, seed: 8, ..FaultPlan::none() },
    );
    let options = CompilerOptions::default();
    let run = || {
        run_sharded(
            &case.model,
            &cfg,
            &options,
            &case.inputs,
            2,
            SimMode::Functional,
            default_engine(),
        )
    };
    let (a, b) = (run(), run());
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "duplicated-packet runs must replay bit-exactly");
            assert!(a.1.packets_duplicated > 0, "duplicate faults must actually fire");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "duplicated-packet faults must replay bit-exactly"),
        (a, b) => panic!("duplicate faults must be deterministic: {a:?} vs {b:?}"),
    }
}

/// A tile death inside a pipelined serve: with the watchdog armed the
/// serve call succeeds and the affected requests carry typed
/// [`RequestError::FaultedTile`] dispositions; without it the stalled
/// pipeline fails the serve with the same typed fault.
#[test]
fn pipelined_tile_death_is_survivable_with_a_watchdog() {
    if !fault_kind_enabled("tile_death") {
        return;
    }
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = with_faults(
        &small_node_config(8),
        FaultPlan {
            tile_death: Some(TileDeath { node: 0, tile: 0, at_cycle: 100 }),
            ..FaultPlan::none()
        },
    );
    let options = CompilerOptions {
        partitioning: Partitioning::Sharded { nodes: 2 },
        ..CompilerOptions::default()
    };
    let requests: Vec<puma::runtime::BatchRequest> =
        (0..3).map(|_| puma::runtime::BatchRequest::new(case.inputs.clone())).collect();
    let runner = || {
        ServeRunner::new(&case.model, &cfg, &options, SimMode::Functional, &NoiseModel::noiseless())
            .expect("pipelined runner")
            .with_engine(default_engine())
            .with_pipeline(true)
    };
    // Watchdog armed: the serve survives; every aborted request names
    // the dead tile.
    let outcome = runner()
        .with_deadline(Some(1_000_000))
        .serve_pattern(&requests, &TrafficPattern::Batch)
        .expect("watchdog keeps the serve alive");
    assert_eq!(outcome.completed(), 0);
    assert_eq!(outcome.timed_out, requests.len());
    for (i, served) in outcome.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Failed(RequestError::FaultedTile { node, tile, .. }) => {
                assert_eq!((*node, *tile), (0, 0), "request {i}");
            }
            other => panic!("request {i}: expected a FaultedTile disposition, got {other:?}"),
        }
    }
    // No watchdog: the stalled pipeline fails the serve with the same
    // typed diagnosis instead of hanging.
    let err = runner()
        .serve_pattern(&requests, &TrafficPattern::Batch)
        .expect_err("an unwatched stalled pipeline must fail typed");
    assert!(matches!(err, PumaError::FaultedTile { .. }), "got {err}");
}
