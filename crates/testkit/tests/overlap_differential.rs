//! Overlap-differential suite: the word-range run-ahead horizons admit
//! same-tile run-ahead only when the static read/write ranges of the
//! tile's agents are **disjoint** — this suite pins both sides of that
//! contract. Fuzzed disjoint-range producer/consumer pair images (each
//! pair its own conflict group) must stay **bit-identical** — outputs
//! *and* [`RunStats`] — across [`SimEngine::Reference`],
//! [`SimEngine::RunAhead`], and [`SimEngine::Compiled`], and the
//! partially-overlapping ping-pong adversary (one conflict group, where
//! admitting run-ahead would reorder a store past an unconsumed word)
//! must too. Each shape also runs under [`ClusterSim`] and
//! [`PipelineSim`], where the external horizon stacks on top of the
//! word-range horizons.

use proptest::prelude::*;
use puma_core::config::NodeConfig;
use puma_core::fixed::Fixed;
use puma_sim::{ClusterSim, NodeSim, PipelineRequest, PipelineSim, RunStats, SimEngine, SimMode};
use puma_testkit::harness::small_node_config;
use puma_testkit::modelgen::{disjoint_pairs_image, disjoint_shard_images, overlap_pingpong_image};
use puma_xbar::NoiseModel;
use std::collections::HashMap;

/// Test config with enough cores per tile for the widest pair image
/// (3 pairs + the shard chain's extra core).
fn cfg() -> NodeConfig {
    let mut cfg = small_node_config(16);
    cfg.tile.cores_per_tile = 8;
    cfg
}

/// Runs one single-node image under `engine`, returning every output and
/// the run statistics.
fn run_node(
    image: &puma_isa::MachineImage,
    mode: SimMode,
    engine: SimEngine,
) -> (HashMap<String, Vec<Fixed>>, RunStats) {
    let mut sim = NodeSim::new(cfg(), image, mode, &NoiseModel::noiseless()).expect("sim builds");
    sim.set_engine(engine);
    sim.run().expect("image is deadlock-free by construction");
    let outputs = sim
        .output_names()
        .iter()
        .map(|n| (n.to_string(), sim.read_output_fixed(n).expect("output binds")))
        .collect();
    (outputs, sim.stats().clone())
}

/// Asserts all three engines agree bit-for-bit on a single-node image, in
/// both simulation modes, and returns the functional outputs.
fn assert_node_engines_agree(image: &puma_isa::MachineImage) -> HashMap<String, Vec<Fixed>> {
    let mut functional_out = HashMap::new();
    for mode in [SimMode::Functional, SimMode::Timing] {
        let (ref_out, ref_stats) = run_node(image, mode, SimEngine::Reference);
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let (out, stats) = run_node(image, mode, engine);
            assert_eq!(ref_out, out, "{mode:?} {engine:?}: outputs diverged");
            assert_eq!(ref_stats, stats, "{mode:?} {engine:?}: RunStats diverged");
        }
        if mode == SimMode::Functional {
            functional_out = ref_out;
        }
    }
    functional_out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed disjoint-range pair images: every pair is its own conflict
    /// group, so the run-ahead engine may slide one pair's instructions
    /// past another pair's pending same-tile deliveries — and must still
    /// be bit-identical to the reference interleaving.
    #[test]
    fn disjoint_pairs_engines_agree(
        tiles in 1usize..5,
        pairs in 1usize..4,
        rounds in 1usize..6,
        width in 1usize..7,
    ) {
        let image = disjoint_pairs_image(tiles, pairs, rounds, width);
        let out = assert_node_engines_agree(&image);
        prop_assert_eq!(out.len(), tiles * pairs);
    }

    /// The partially-overlapping ping-pong adversary: both cores share
    /// one conflict group (the reply range reuses the upper half of the
    /// produced range), so the word-range horizon must refuse run-ahead
    /// and fall back to delivery order. The attribute protocol forces a
    /// unique schedule, so all engines must agree exactly.
    #[test]
    fn overlapping_pingpong_engines_agree(
        tiles in 1usize..5,
        rounds in 1usize..6,
        width in 2usize..9,
    ) {
        let image = overlap_pingpong_image(tiles, rounds, width);
        let out = assert_node_engines_agree(&image);
        // Strict alternation: the pong accumulator sums the raw rand
        // vectors, the ping accumulator sums the echoed replies — the
        // reply is the loaded data itself, so the sums agree.
        for t in 0..tiles {
            prop_assert_eq!(&out[&format!("t{t}ping")], &out[&format!("t{t}pong")]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Disjoint pairs sharded across cluster nodes and coupled by a
    /// cross-node token chain: the conservative external horizon stacks
    /// on the per-tile word-range horizons. Cluster runs must agree
    /// across engines in both modes.
    #[test]
    fn sharded_pairs_engines_agree(
        nodes in 2usize..5,
        pairs in 1usize..4,
        rounds in 1usize..4,
        width in 1usize..5,
    ) {
        let images = disjoint_shard_images(nodes, pairs, rounds, width);
        let run_cluster = |mode: SimMode, engine: SimEngine| {
            let mut cluster = ClusterSim::new(cfg(), &images, mode, &NoiseModel::noiseless())
                .expect("cluster builds");
            cluster.set_engine(engine);
            cluster.run().expect("chain is deadlock-free");
            let out: HashMap<String, Vec<Fixed>> = cluster
                .output_names()
                .iter()
                .map(|n| (n.to_string(), cluster.read_output_fixed(n).expect("output binds")))
                .collect();
            (out, cluster.stats().clone())
        };
        for mode in [SimMode::Functional, SimMode::Timing] {
            let (ref_out, ref_stats) = run_cluster(mode, SimEngine::Reference);
            prop_assert!(ref_stats.internode_words > 0, "chain must talk over the link");
            prop_assert_eq!(ref_out.len(), nodes * pairs + 1);
            for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
                let (out, stats) = run_cluster(mode, engine);
                prop_assert_eq!(&ref_out, &out, "{:?} {:?}: cluster outputs diverged", mode, engine);
                prop_assert_eq!(
                    &ref_stats, &stats,
                    "{:?} {:?}: cluster RunStats diverged", mode, engine
                );
            }
        }
    }

    /// The sharded pair/chain images served as a pipeline with several
    /// requests in flight: per-request segments and held packets interact
    /// with the word-range horizons. The full report must agree across
    /// engines.
    #[test]
    fn pipelined_pairs_engines_agree(
        nodes in 2usize..4,
        pairs in 1usize..3,
        rounds in 1usize..4,
        width in 1usize..5,
        requests in 2usize..5,
    ) {
        let images = disjoint_shard_images(nodes, pairs, rounds, width);
        let pipeline_requests: Vec<PipelineRequest> = (0..requests)
            .map(|i| PipelineRequest { arrival: (i as u64) * 50, writes: Vec::new() })
            .collect();
        let serve = |engine: SimEngine| {
            let mut sim =
                PipelineSim::new(cfg(), &images, SimMode::Functional, &NoiseModel::noiseless())
                    .expect("pipeline builds");
            sim.set_engine(engine);
            sim.serve(&[], &pipeline_requests, None).expect("pipeline serves")
        };
        let reference = serve(SimEngine::Reference);
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let other = serve(engine);
            prop_assert_eq!(reference.shed, other.shed);
            prop_assert_eq!(reference.max_concurrent, other.max_concurrent);
            prop_assert_eq!(reference.makespan, other.makespan);
            prop_assert_eq!(
                &reference.stages, &other.stages,
                "{:?}: stage occupancy diverged", engine
            );
            prop_assert_eq!(reference.results.len(), other.results.len());
            for (i, (a, b)) in reference.results.iter().zip(other.results.iter()).enumerate() {
                prop_assert_eq!(a.admitted, b.admitted, "request {} admission diverged", i);
                prop_assert_eq!(a.start, b.start, "request {} start diverged", i);
                prop_assert_eq!(a.finish, b.finish, "request {} finish diverged", i);
                prop_assert_eq!(&a.outputs, &b.outputs, "request {} outputs diverged", i);
                prop_assert_eq!(&a.stats, &b.stats, "request {} stats diverged", i);
            }
        }
    }
}
