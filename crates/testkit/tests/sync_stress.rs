//! Synchronization-stress differential suite: hand-assembled images whose
//! instruction mix is dominated by FIFO send/receive and attribute-buffer
//! handoffs — exactly the traffic where the run-ahead scheduler's
//! per-tile event horizons, inline wake continuations, and
//! condition-indexed wake-ups operate. Every case pins **bit-identical**
//! outputs *and* [`RunStats`] across [`SimEngine::Reference`],
//! [`SimEngine::RunAhead`], and [`SimEngine::Compiled`], standalone and —
//! where the external horizon
//! interacts with the per-tile horizons — under [`ClusterSim`] and
//! [`PipelineSim`].

use proptest::prelude::*;
use puma_core::config::NodeConfig;
use puma_core::fixed::Fixed;
use puma_sim::{ClusterSim, NodeSim, PipelineRequest, PipelineSim, RunStats, SimEngine, SimMode};
use puma_testkit::harness::{seeded_values, small_node_config};
use puma_testkit::modelgen::{fanout_image, lattice_images, pingpong_ring_image};
use puma_xbar::NoiseModel;
use std::collections::HashMap;

fn cfg() -> NodeConfig {
    small_node_config(16)
}

/// Runs one single-node image under `engine`, returning every output and
/// the run statistics.
fn run_node(
    image: &puma_isa::MachineImage,
    inputs: &[(&str, Vec<f32>)],
    mode: SimMode,
    engine: SimEngine,
) -> (HashMap<String, Vec<Fixed>>, RunStats) {
    let mut sim = NodeSim::new(cfg(), image, mode, &NoiseModel::noiseless()).expect("sim builds");
    sim.set_engine(engine);
    for (name, values) in inputs {
        sim.write_input(name, values).expect("input binds");
    }
    sim.run().expect("image is deadlock-free by construction");
    let outputs = sim
        .output_names()
        .iter()
        .map(|n| (n.to_string(), sim.read_output_fixed(n).expect("output binds")))
        .collect();
    (outputs, sim.stats().clone())
}

/// Asserts all three engines agree bit-for-bit on a single-node image, in
/// both simulation modes, and returns the functional outputs.
fn assert_node_engines_agree(
    image: &puma_isa::MachineImage,
    inputs: &[(&str, Vec<f32>)],
) -> HashMap<String, Vec<Fixed>> {
    let mut functional_out = HashMap::new();
    for mode in [SimMode::Functional, SimMode::Timing] {
        let (ref_out, ref_stats) = run_node(image, inputs, mode, SimEngine::Reference);
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let (out, stats) = run_node(image, inputs, mode, engine);
            assert_eq!(ref_out, out, "{mode:?} {engine:?}: outputs diverged");
            assert_eq!(ref_stats, stats, "{mode:?} {engine:?}: RunStats diverged");
        }
        if mode == SimMode::Functional {
            functional_out = ref_out;
        }
    }
    functional_out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FIFO ping-pong chains: a token ring of tile control units. The
    /// token must come back bit-identical, with identical stats, on both
    /// engines.
    #[test]
    fn ring_engines_agree(
        tiles in 2usize..6,
        rounds in 1usize..6,
        width in 1usize..8,
        seed in 0u64..1000,
    ) {
        let image = pingpong_ring_image(tiles, rounds, width);
        let token = seeded_values(width, seed);
        let out = assert_node_engines_agree(&image, &[("token", token.clone())]);
        let got: Vec<f32> = out["token"].iter().copied().map(Fixed::to_f32).collect();
        for (g, w) in got.iter().zip(token.iter()) {
            // The ring only moves words; one Q4.12 quantization applies.
            prop_assert!((g - w).abs() < 0.001, "token corrupted: {g} vs {w}");
        }
    }

    /// Multi-consumer attribute-buffer fan-out: producer stores with
    /// count = N, N consumers consume-read and accumulate. Exercises
    /// multi-waiter wake-ups (including failed retries re-parking) and
    /// writer blocking on unconsumed words.
    #[test]
    fn fanout_engines_agree(
        consumers in 1usize..4,
        rounds in 1usize..6,
        width in 1usize..6,
        double_buffer in any::<bool>(),
    ) {
        let image = fanout_image(consumers, rounds, width, double_buffer);
        let out = assert_node_engines_agree(&image, &[]);
        // All consumers read the same rand stream, so the sums agree.
        for c in 1..consumers {
            prop_assert_eq!(&out["acc0"], &out[&format!("acc{c}")]);
        }
    }

    /// Cross-tile producer/consumer lattices on one node: NoC relays
    /// chained through per-tile handoffs.
    #[test]
    fn lattice_engines_agree(
        tiles in 2usize..7,
        rounds in 1usize..5,
        width in 1usize..6,
    ) {
        let image = lattice_images(tiles, rounds, width, 1).remove(0);
        assert_node_engines_agree(&image, &[]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same lattice sharded across cluster nodes: inter-node packets
    /// replace NoC hops, so the conservative *external* horizon interacts
    /// with the per-tile horizons. Cluster runs must agree across engines
    /// and stay bit-identical to the single-node run.
    #[test]
    fn sharded_lattice_engines_agree(
        shards in 2usize..5,
        per_node in 1usize..3,
        rounds in 1usize..4,
        width in 1usize..5,
    ) {
        let tiles = shards * per_node;
        let single = lattice_images(tiles, rounds, width, 1).remove(0);
        let (single_out, _) = run_node(&single, &[], SimMode::Functional, SimEngine::default());

        let images = lattice_images(tiles, rounds, width, shards);
        let run_cluster = |mode: SimMode, engine: SimEngine| {
            let mut cluster = ClusterSim::new(cfg(), &images, mode, &NoiseModel::noiseless())
                .expect("cluster builds");
            cluster.set_engine(engine);
            cluster.run().expect("lattice is deadlock-free");
            let out: HashMap<String, Vec<Fixed>> = cluster
                .output_names()
                .iter()
                .map(|n| (n.to_string(), cluster.read_output_fixed(n).expect("output binds")))
                .collect();
            (out, cluster.stats().clone())
        };
        for mode in [SimMode::Functional, SimMode::Timing] {
            let (ref_out, ref_stats) = run_cluster(mode, SimEngine::Reference);
            for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
                let (out, stats) = run_cluster(mode, engine);
                prop_assert_eq!(&ref_out, &out, "{:?} {:?}: cluster outputs diverged", mode, engine);
                prop_assert_eq!(
                    &ref_stats, &stats,
                    "{:?} {:?}: cluster RunStats diverged", mode, engine
                );
            }
            if shards > 1 {
                prop_assert!(ref_stats.internode_words > 0, "shards must talk over the link");
            }
            if mode == SimMode::Functional {
                prop_assert_eq!(
                    &ref_out, &single_out,
                    "sharding must not change results"
                );
            }
        }
    }

    /// The sharded lattice served as a *pipeline* with several requests in
    /// flight: external horizons, per-request segments, and held packets
    /// all interact with per-tile horizons. The full report — outputs,
    /// start/finish cycles, per-stage occupancy, overlap — must agree
    /// across engines.
    #[test]
    fn pipelined_lattice_engines_agree(
        shards in 2usize..4,
        rounds in 1usize..4,
        width in 1usize..5,
        requests in 2usize..5,
    ) {
        let images = lattice_images(shards, rounds, width, shards);
        let pipeline_requests: Vec<PipelineRequest> = (0..requests)
            .map(|i| PipelineRequest { arrival: (i as u64) * 50, writes: Vec::new() })
            .collect();
        let serve = |engine: SimEngine| {
            let mut sim =
                PipelineSim::new(cfg(), &images, SimMode::Functional, &NoiseModel::noiseless())
                    .expect("pipeline builds");
            sim.set_engine(engine);
            sim.serve(&[], &pipeline_requests, None).expect("pipeline serves")
        };
        let reference = serve(SimEngine::Reference);
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let other = serve(engine);
            prop_assert_eq!(reference.shed, other.shed);
            prop_assert_eq!(reference.max_concurrent, other.max_concurrent);
            prop_assert_eq!(reference.makespan, other.makespan);
            prop_assert_eq!(
                &reference.stages, &other.stages,
                "{:?}: stage occupancy diverged", engine
            );
            prop_assert_eq!(reference.results.len(), other.results.len());
            for (i, (a, b)) in reference.results.iter().zip(other.results.iter()).enumerate() {
                prop_assert_eq!(a.admitted, b.admitted, "request {} admission diverged", i);
                prop_assert_eq!(a.start, b.start, "request {} start diverged", i);
                prop_assert_eq!(a.finish, b.finish, "request {} finish diverged", i);
                prop_assert_eq!(&a.outputs, &b.outputs, "request {} outputs diverged", i);
                prop_assert_eq!(&a.stats, &b.stats, "request {} stats diverged", i);
            }
        }
    }
}
