//! Sharded differential suite: a model compiled with
//! `Partitioning::Sharded` and executed across 2 or 4 `NodeSim`s under
//! `ClusterSim` must produce **bit-identical** outputs to the single-node
//! run. Sharding is a pure renumbering of the compiled image — every core
//! executes exactly the instruction stream it would on one big node — so
//! any divergence is a shard-rewrite or cluster-scheduler bug, never
//! tolerance noise.
//!
//! The suite also pins the conservation law `NoC words + interconnect
//! words (sharded) = NoC words (single-node)` — every cross-tile transfer
//! rides exactly one of the two networks — and that timing-mode sharded
//! runs account nonzero inter-node transfer cycles and energy.

use proptest::prelude::*;
use puma_compiler::CompilerOptions;
use puma_sim::{EnergyComponent, SimEngine, SimMode};
use puma_testkit::harness::{default_engine, run_sharded, run_with_engine, small_node_config};
use puma_testkit::modelgen;

/// Runs `case` on one node and sharded across `nodes`, asserting exact
/// output equality plus the counter conservation laws.
fn assert_sharded_matches_single(case: &modelgen::ModelCase, nodes: usize, mode: SimMode) {
    // dim-8 crossbars spread even the small fuzzed models over many tiles,
    // so 2- and 4-node shards all receive real work.
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let engine = default_engine();
    let (single_out, single_stats) =
        run_with_engine(&case.model, &cfg, &options, &case.inputs, mode, engine)
            .expect("single-node run");
    let (sharded_out, sharded_stats) =
        run_sharded(&case.model, &cfg, &options, &case.inputs, nodes, mode, engine)
            .expect("sharded run");
    assert_eq!(single_out, sharded_out, "{nodes}-node outputs must be bit-identical");
    // Same programs, same work: only the transport of cross-tile edges
    // differs (NoC on one node, NoC + interconnect sharded).
    assert_eq!(single_stats.total_instructions(), sharded_stats.total_instructions());
    assert_eq!(single_stats.mvmu_activations, sharded_stats.mvmu_activations);
    assert_eq!(single_stats.shared_memory_words, sharded_stats.shared_memory_words);
    assert_eq!(
        single_stats.network_words,
        sharded_stats.network_words + sharded_stats.internode_words,
        "every cross-tile word rides exactly one network"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed MLPs sharded across 2 nodes ≡ single node.
    #[test]
    fn two_node_mlp_matches_single_node(case in modelgen::mlp_case()) {
        assert_sharded_matches_single(&case, 2, SimMode::Functional);
    }

    /// Fuzzed MLPs sharded across 4 nodes ≡ single node.
    #[test]
    fn four_node_mlp_matches_single_node(case in modelgen::mlp_case()) {
        assert_sharded_matches_single(&case, 4, SimMode::Functional);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fuzzed unrolled LSTM stacks sharded across 2 and 4 nodes ≡ single
    /// node (recurrent weight reuse sends data back and forth across the
    /// shard boundary, the hardest traffic pattern).
    #[test]
    fn sharded_lstms_match_single_node(case in modelgen::lstm_case()) {
        assert_sharded_matches_single(&case, 2, SimMode::Functional);
        assert_sharded_matches_single(&case, 4, SimMode::Functional);
    }

    /// All engines agree on the same sharded cluster run — neither the
    /// run-ahead external-horizon gating nor the compiled pre-decode may
    /// change semantics.
    #[test]
    fn cluster_engines_agree(case in modelgen::mlp_case()) {
        let cfg = small_node_config(8);
        let options = CompilerOptions::default();
        let (ref_out, ref_stats) = run_sharded(
            &case.model, &cfg, &options, &case.inputs, 2,
            SimMode::Functional, SimEngine::Reference,
        ).expect("reference cluster run");
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let (out, stats) = run_sharded(
                &case.model, &cfg, &options, &case.inputs, 2,
                SimMode::Functional, engine,
            ).expect("optimized-engine cluster run");
            prop_assert_eq!(
                &ref_out, &out,
                "{:?}: cluster outputs must be bit-identical", engine
            );
            prop_assert_eq!(
                &ref_stats, &stats,
                "{:?}: cluster RunStats must be bit-identical", engine
            );
        }
    }
}

/// The fixed zoo corpus (Table 5 families) sharded across 2 and 4 nodes,
/// functional and timing mode.
#[test]
fn zoo_corpus_shards_bit_identically() {
    for case in modelgen::simulable_zoo_cases(37) {
        for nodes in [2usize, 4] {
            for mode in [SimMode::Functional, SimMode::Timing] {
                assert_sharded_matches_single(&case, nodes, mode);
            }
        }
    }
}

/// Timing-mode sharded runs must account the interconnect: nonzero
/// transfer words, busy cycles, and energy, and a completion time that
/// exceeds the single-node run (the link is slower than the NoC).
#[test]
fn timing_mode_accounts_internode_transfers() {
    let case = &modelgen::simulable_zoo_cases(11)[0]; // MLP-64-150-150-14
    let cfg = small_node_config(8);
    let options = CompilerOptions::default();
    let engine = default_engine();
    let (_, single) =
        run_with_engine(&case.model, &cfg, &options, &case.inputs, SimMode::Timing, engine)
            .expect("single-node timing run");
    let (_, sharded) =
        run_sharded(&case.model, &cfg, &options, &case.inputs, 2, SimMode::Timing, engine)
            .expect("sharded timing run");
    assert!(sharded.internode_words > 0, "the shard boundary must carry traffic");
    assert!(sharded.energy.component_nj(EnergyComponent::Interconnect) > 0.0);
    assert!(sharded.energy.component_busy(EnergyComponent::Interconnect) > 0);
    assert!(
        sharded.cycles > single.cycles,
        "chip-to-chip latency must show up in the critical path ({} vs {})",
        sharded.cycles,
        single.cycles
    );
}
