//! Isolation differential: a fabric hosting several resident zoo models
//! on disjoint tile ranges must serve each model with outputs **and**
//! [`puma_sim::RunStats`] bit-identical to serving that model alone at
//! the same tile base on the same machine. Idle co-tenants never prime,
//! so they contribute zero events, cycles, and energy — any divergence
//! is a tenancy-isolation bug, not noise.
//!
//! The suite honours `PUMA_ENGINE`, so CI's three-engine matrix pins the
//! invariant under the reference, run-ahead, and compiled engines.

use std::collections::HashMap;

use puma_compiler::{
    compile, compose_fabric, fit_config, CompiledModel, CompilerOptions, Resident,
};
use puma_core::config::{NodeConfig, NonIdealityConfig};
use puma_sim::{ClusterSim, NodeSim, ResidentModel, RunStats, SimMode};
use puma_testkit::harness::{
    default_engine, read_model_outputs, reference_outputs, write_model_inputs,
};
use puma_testkit::modelgen::{self, ModelCase};
use puma_xbar::NoiseModel;

/// One zoo model compiled for the shared fabric, with its tile range.
struct Tenant {
    name: String,
    case: ModelCase,
    compiled: CompiledModel,
    base: usize,
    tiles: usize,
}

/// Compiles the three simulable zoo models and lays them out at
/// staggered bases (a one-tile gap between neighbours), returning the
/// tenants plus a [`NodeConfig`] wide enough for the whole fabric.
fn zoo_tenants() -> (Vec<Tenant>, NodeConfig) {
    let options = CompilerOptions::default();
    let mut cfg = NodeConfig::default();
    let mut tenants = Vec::new();
    let mut base = 1;
    for (i, case) in modelgen::simulable_zoo_cases(7).into_iter().enumerate() {
        let compiled = compile(&case.model, &cfg, &options).expect("zoo model compiles");
        cfg = fit_config(&cfg, &compiled);
        let tiles = compiled.stats.tiles_used.max(1);
        tenants.push(Tenant { name: format!("zoo{i}"), case, compiled, base, tiles });
        base += tiles + 1;
    }
    cfg.tiles_per_node = cfg.tiles_per_node.max(base);
    (tenants, cfg)
}

fn resident_of(t: &Tenant) -> ResidentModel {
    ResidentModel { name: t.name.clone(), base: t.base, tiles: t.tiles }
}

fn fabric_resident(t: &Tenant) -> Resident<'_> {
    Resident { name: &t.name, image: &t.compiled.image, base: t.base }
}

/// The slice of simulator surface the differential drives — lets one
/// serving routine target [`NodeSim`] and [`ClusterSim`] alike.
trait TenantHost {
    fn reset(&mut self);
    fn write(&mut self, name: &str, values: &[f32]) -> Result<(), puma_core::PumaError>;
    fn run_tenant(&mut self, name: &str) -> Result<RunStats, puma_core::PumaError>;
    fn read(&self, name: &str) -> Result<Vec<f32>, puma_core::PumaError>;
}

impl TenantHost for NodeSim {
    fn reset(&mut self) {
        NodeSim::reset(self);
    }
    fn write(&mut self, name: &str, values: &[f32]) -> Result<(), puma_core::PumaError> {
        self.write_input(name, values)
    }
    fn run_tenant(&mut self, name: &str) -> Result<RunStats, puma_core::PumaError> {
        self.run_resident(name).cloned()
    }
    fn read(&self, name: &str) -> Result<Vec<f32>, puma_core::PumaError> {
        self.read_output(name)
    }
}

impl TenantHost for ClusterSim {
    fn reset(&mut self) {
        ClusterSim::reset(self);
    }
    fn write(&mut self, name: &str, values: &[f32]) -> Result<(), puma_core::PumaError> {
        self.write_input(name, values)
    }
    fn run_tenant(&mut self, name: &str) -> Result<RunStats, puma_core::PumaError> {
        self.run_resident(name).cloned()
    }
    fn read(&self, name: &str) -> Result<Vec<f32>, puma_core::PumaError> {
        self.read_output(name)
    }
}

/// Resets the machine, writes `t`'s inputs under its tenant prefix, runs
/// it to completion, and returns its logical outputs and stats.
fn serve_one(sim: &mut dyn TenantHost, t: &Tenant) -> (HashMap<String, Vec<f32>>, RunStats) {
    let prefix = |name: &str| format!("{}:{}", t.name, name);
    sim.reset();
    write_model_inputs(&t.compiled, &t.case.inputs, &mut |name, values| {
        sim.write(&prefix(name), values)
    })
    .expect("tenant inputs");
    let stats = sim.run_tenant(&t.name).expect("tenant run");
    let out =
        read_model_outputs(&t.compiled, &|name| sim.read(&prefix(name))).expect("tenant outputs");
    (out, stats)
}

/// Serves `t` alone: a fabric holding only this tenant, at the same base
/// and on the same machine config as the shared run.
fn serve_alone(t: &Tenant, cfg: &NodeConfig) -> (HashMap<String, Vec<f32>>, RunStats) {
    let image = compose_fabric(&[fabric_resident(t)]).expect("solo fabric");
    let mut sim =
        NodeSim::new(*cfg, &image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(vec![resident_of(t)]).unwrap();
    serve_one(&mut sim, t)
}

/// A single `NodeSim` hosting all three zoo models serves each with
/// outputs and stats bit-identical to the solo runs.
#[test]
fn node_serves_residents_identically_to_solo_runs() {
    let (tenants, cfg) = zoo_tenants();
    assert!(tenants.len() >= 2, "need at least two zoo tenants");
    let fabric: Vec<Resident<'_>> = tenants.iter().map(fabric_resident).collect();
    let image = compose_fabric(&fabric).expect("shared fabric");
    let mut sim = NodeSim::new(cfg, &image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(tenants.iter().map(resident_of).collect()).unwrap();
    for t in &tenants {
        let (solo_out, solo_stats) = serve_alone(t, &cfg);
        let (out, stats) = serve_one(&mut sim, t);
        assert_eq!(solo_out, out, "outputs of '{}' must match its solo run", t.name);
        assert_eq!(solo_stats, stats, "stats of '{}' must match its solo run", t.name);
        assert!(stats.cycles > 0);
        // The model's functional contract still holds on the shared fabric.
        let reference = reference_outputs(&t.case.model, &t.case.inputs).unwrap();
        for (name, want) in &reference {
            let got = &out[name];
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() <= t.case.tolerance, "'{}' output {name} drifted", t.name);
            }
        }
    }
}

/// A two-node `ClusterSim` (one tenant on node 0, two on node 1) serves
/// each resident with outputs and stats bit-identical to serving it
/// alone on a single node — co-tenants and idle peer nodes are invisible.
#[test]
fn cluster_serves_residents_identically_to_solo_runs() {
    let (tenants, cfg) = zoo_tenants();
    assert!(tenants.len() >= 3, "layout below expects three zoo tenants");
    let (first, rest) = tenants.split_at(1);
    let image0 = compose_fabric(&[fabric_resident(&first[0])]).expect("node-0 fabric");
    let image1 = compose_fabric(&rest.iter().map(fabric_resident).collect::<Vec<_>>())
        .expect("node-1 fabric");
    let mut sim =
        ClusterSim::new(cfg, &[image0, image1], SimMode::Functional, &NoiseModel::noiseless())
            .unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(0, first.iter().map(resident_of).collect()).unwrap();
    sim.set_residents(1, rest.iter().map(resident_of).collect()).unwrap();
    for t in &tenants {
        let (solo_out, solo_stats) = serve_alone(t, &cfg);
        let (out, stats) = serve_one(&mut sim, t);
        assert_eq!(solo_out, out, "cluster outputs of '{}' must match its solo run", t.name);
        assert_eq!(solo_stats, stats, "cluster stats of '{}' must match its solo run", t.name);
    }
}

/// Serves `t` alone at tile base **zero** — a different physical
/// placement than the shared fabric's staggered base.
fn serve_alone_at_zero(t: &Tenant, cfg: &NodeConfig) -> (HashMap<String, Vec<f32>>, RunStats) {
    let rebased = Resident { name: &t.name, image: &t.compiled.image, base: 0 };
    let image = compose_fabric(&[rebased]).expect("rebased solo fabric");
    let mut sim =
        NodeSim::new(*cfg, &image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(vec![ResidentModel { name: t.name.clone(), base: 0, tiles: t.tiles }])
        .unwrap();
    serve_one(&mut sim, t)
}

/// Drift (and read noise) must be a pure function of
/// `(seed, time index, cell)` with the cell keyed *resident-relative*:
/// a tenant interleaved with co-tenants in a shared fabric sees exactly
/// the drifted conductances of its solo run — even solo at a different
/// tile base. Any dependence on absolute tile placement, co-tenant
/// activity, or serving order would break this bit-identity.
#[test]
fn residents_drift_identically_to_solo_runs() {
    let (tenants, mut cfg) = zoo_tenants();
    cfg.non_ideality = NonIdealityConfig {
        read_sigma: 0.05,
        drift_nu: 0.05,
        drift_t0_cycles: 5_000,
        ir_drop_alpha: 0.01,
        seed: 77,
    };
    let fabric: Vec<Resident<'_>> = tenants.iter().map(fabric_resident).collect();
    let image = compose_fabric(&fabric).expect("shared fabric");
    let mut sim = NodeSim::new(cfg, &image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(tenants.iter().map(resident_of).collect()).unwrap();
    // Interleave: serve every tenant once (warm the fabric), then compare
    // a second interleaved pass against the solo runs.
    for t in &tenants {
        serve_one(&mut sim, t);
    }
    for t in &tenants {
        let (out, stats) = serve_one(&mut sim, t);
        assert!(stats.degraded_mvm_activations > 0, "'{}' must take the degraded path", t.name);
        let (solo_out, solo_stats) = serve_alone(t, &cfg);
        assert_eq!(solo_out, out, "'{}' drift diverged from its solo run", t.name);
        assert_eq!(solo_stats, stats, "'{}' stats diverged from its solo run", t.name);
        let (zero_out, zero_stats) = serve_alone_at_zero(t, &cfg);
        assert_eq!(zero_out, out, "'{}' drift must be placement-invariant", t.name);
        assert_eq!(zero_stats.degraded_mvm_activations, stats.degraded_mvm_activations);
    }
}

use puma::runtime::{
    BatchRequest, Disposition, FabricSpec, ModelCatalog, RequestError, RetryPolicy, ScaleDirection,
    TenantServer, TenantStream,
};
use puma_core::config::{FaultPlan, TileDeath};
use puma_core::tensor::Matrix;
use puma_core::timing::TrafficPattern;

/// A one-tile model `y = tanh(A·x)` over 16 lanes, scaled per tenant.
fn tiny_model(name: &str, scale: f32) -> puma_compiler::graph::Model {
    let mut m = puma_compiler::graph::Model::new(name);
    let x = m.input("x", 16);
    let a = m.constant_matrix(
        "A",
        Matrix::from_fn(16, 16, |r, c| scale * ((r + 2 * c) % 5) as f32 * 0.01),
    );
    let ax = m.mvm(a, x).unwrap();
    let y = m.tanh(ax);
    m.output("y", y);
    m
}

fn tiny_catalog(models: &[(&str, f32)], cfg: &NodeConfig) -> ModelCatalog {
    let mut catalog = ModelCatalog::new();
    for &(name, scale) in models {
        catalog
            .register_model(name, &tiny_model(name, scale), cfg, &CompilerOptions::default())
            .expect("tiny model registers");
    }
    catalog
}

fn tiny_streams(n: usize) -> Vec<TenantStream> {
    let requests: Vec<BatchRequest> = (0..n)
        .map(|i| BatchRequest::new(vec![("x".to_string(), vec![0.1 * (i + 1) as f32; 16])]))
        .collect();
    vec![
        TenantStream::new("victim", requests.clone(), TrafficPattern::Uniform { interval: 50 }),
        TenantStream::new("bystander", requests, TrafficPattern::Uniform { interval: 70 }),
    ]
}

/// An injected tile death under the victim model's deployment: the dead
/// replica is quarantined (its tiles never re-placed), a failover
/// replica is re-placed onto free tiles, the aborted request retries and
/// completes, and subsequent requests keep completing. The *bystander*
/// tenant — and every completed output of the victim — stays
/// bit-identical to the fault-free serve: fault recovery is a pure
/// scheduling event, invisible to surviving tenants.
#[test]
fn tenant_server_fails_over_after_tile_death_with_survivors_untouched() {
    let cfg = NodeConfig::default();
    let mut faulty_cfg = cfg;
    // The victim deploys first, so its materialized replica owns tile 0
    // of node 0; it dies while the first request is in flight.
    faulty_cfg.faults = FaultPlan {
        tile_death: Some(TileDeath { node: 0, tile: 0, at_cycle: 500 }),
        ..FaultPlan::none()
    };
    let streams = tiny_streams(3);
    let serve = |cfg: &NodeConfig| {
        let mut server = TenantServer::functional(
            tiny_catalog(&[("victim", 1.0), ("bystander", -2.0)], cfg),
            FabricSpec::new(1, 8),
            cfg,
        )
        .expect("server");
        server.deploy("victim").expect("victim deploys");
        server.deploy("bystander").expect("bystander deploys");
        server = server.with_retry_policy(RetryPolicy::new(2, 16));
        server.serve(&streams).expect("serve")
    };
    let clean = serve(&cfg);
    let faulted = serve(&faulty_cfg);

    // Recovery: the victim still completes everything; exactly one
    // request needed a fault retry; nothing failed permanently.
    let victim = faulted.model("victim").expect("victim outcome");
    assert_eq!(victim.completed(), 3);
    assert_eq!(victim.retried, 1);
    assert_eq!(victim.failed, 0);
    assert_eq!(victim.shed, 0);
    // The failure and recovery are recorded, in order, against the
    // victim alone.
    let kinds: Vec<(String, ScaleDirection)> =
        faulted.scale_events.iter().map(|e| (e.model.clone(), e.direction)).collect();
    assert_eq!(
        kinds,
        vec![
            ("victim".to_string(), ScaleDirection::Quarantine),
            ("victim".to_string(), ScaleDirection::Failover),
        ]
    );
    assert_eq!(faulted.scale_events[0].cycle, 500);
    assert_eq!(faulted.scale_events[1].cycle, 500);
    assert_eq!(faulted.scale_events[1].replicas, 1);

    // Survivor isolation: the bystander's serve is bit-identical to the
    // fault-free run — outputs, stats, latencies, everything.
    let clean_by = clean.model("bystander").expect("clean bystander");
    let by = faulted.model("bystander").expect("faulted bystander");
    assert_eq!(by.stats, clean_by.stats, "a co-tenant's death must not leak into the survivor");
    assert_eq!(by.latency, clean_by.latency);
    assert_eq!(by.shed, 0);
    assert_eq!(by.retried, 0);
    for (i, (a, b)) in by.results.iter().zip(clean_by.results.iter()).enumerate() {
        let (Disposition::Completed { result: ra, .. }, Disposition::Completed { result: rb, .. }) =
            (&a.disposition, &b.disposition)
        else {
            panic!("bystander request {i} did not complete in both serves");
        };
        assert_eq!(ra.outputs, rb.outputs, "bystander request {i} outputs diverged");
    }
    // The victim's completed outputs — including the retried request —
    // are bit-identical to the fault-free serve: failover re-places the
    // same image, and fault sites are keyed resident-relative.
    let clean_victim = clean.model("victim").expect("clean victim");
    for (i, (a, b)) in victim.results.iter().zip(clean_victim.results.iter()).enumerate() {
        let (Disposition::Completed { result: ra, .. }, Disposition::Completed { result: rb, .. }) =
            (&a.disposition, &b.disposition)
        else {
            panic!("victim request {i} did not complete in both serves");
        };
        assert_eq!(ra.outputs, rb.outputs, "victim request {i} outputs diverged");
    }
}

/// With no spare capacity and no retry budget, the death degrades only
/// the victim: its requests fail with typed
/// [`RequestError::FaultedTile`] dispositions naming the dead tile,
/// while the serve call itself succeeds.
#[test]
fn tenant_server_fails_requests_typed_when_failover_has_no_capacity() {
    let cfg = NodeConfig {
        faults: FaultPlan {
            tile_death: Some(TileDeath { node: 0, tile: 0, at_cycle: 500 }),
            ..FaultPlan::none()
        },
        ..NodeConfig::default()
    };
    let mut server = TenantServer::functional(
        tiny_catalog(&[("victim", 1.0)], &cfg),
        FabricSpec::new(1, 1),
        &cfg,
    )
    .expect("server");
    server.deploy("victim").expect("victim deploys");
    let streams = vec![TenantStream::new(
        "victim",
        (0..3)
            .map(|i| BatchRequest::new(vec![("x".to_string(), vec![0.1 * (i + 1) as f32; 16])]))
            .collect(),
        TrafficPattern::Uniform { interval: 50 },
    )];
    let outcome = server.serve(&streams).expect("the serve call survives the death");
    let victim = outcome.model("victim").expect("victim outcome");
    assert_eq!(victim.completed(), 0);
    assert_eq!(victim.failed, 3);
    for (i, served) in victim.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Failed(RequestError::FaultedTile { node, tile, cycle, .. }) => {
                assert_eq!((*node, *tile, *cycle), (0, 0, 500), "request {i}");
            }
            other => panic!("request {i}: expected a FaultedTile disposition, got {other:?}"),
        }
    }
    // Only the quarantine is recorded: there was nowhere to fail over.
    let kinds: Vec<ScaleDirection> = outcome.scale_events.iter().map(|e| e.direction).collect();
    assert_eq!(kinds, vec![ScaleDirection::Quarantine]);
}

/// Serving order doesn't leak state: running the tenants twice in
/// opposite orders reproduces identical outputs and stats each time.
#[test]
fn serving_order_does_not_perturb_residents() {
    let (tenants, cfg) = zoo_tenants();
    let fabric: Vec<Resident<'_>> = tenants.iter().map(fabric_resident).collect();
    let image = compose_fabric(&fabric).expect("shared fabric");
    let mut sim = NodeSim::new(cfg, &image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
    sim.set_engine(default_engine());
    sim.set_residents(tenants.iter().map(resident_of).collect()).unwrap();
    let forward: Vec<_> = tenants.iter().map(|t| serve_one(&mut sim, t)).collect();
    let backward: Vec<_> = tenants.iter().rev().map(|t| serve_one(&mut sim, t)).collect();
    for (t, (fwd, bwd)) in tenants.iter().zip(forward.iter().zip(backward.iter().rev())) {
        assert_eq!(fwd, bwd, "'{}' must be order-insensitive", t.name);
    }
}
