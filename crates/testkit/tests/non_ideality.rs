//! Non-ideality determinism suite.
//!
//! Two contracts from the analog non-ideality layer:
//!
//! 1. **Disabled ≡ absent**: an ideal [`NonIdealityConfig`] (all knobs
//!    zero, any seed) is bit-identical — outputs *and* [`RunStats`] — to
//!    the config-absent default, under all three engines. The simulator
//!    routes ideal configs through the untouched exact MVM path, so this
//!    pins that the layer cannot perturb the existing differential
//!    suites.
//! 2. **Replay**: a fixed `(config, seed)` pair replays bit-exactly
//!    across runs and across engines. Perturbations are counter-based
//!    hashes of `(seed, site, cell, time index)`, and the per-MVM time
//!    index is engine-identical, so the noisy path inherits the
//!    three-engine bit-identity of the ideal one.

use proptest::prelude::*;
use puma_core::config::{MvmuConfig, NonIdealityConfig};
use puma_sim::{SimEngine, SimMode};
use puma_testkit::harness::{run_with_engine, small_node_config};
use puma_testkit::modelgen;

const ENGINES: [SimEngine; 3] = [SimEngine::Reference, SimEngine::RunAhead, SimEngine::Compiled];

/// A representative degraded config: every knob active plus a narrowed
/// ADC, magnitudes small enough that the zoo models still execute.
fn degraded_config() -> NonIdealityConfig {
    NonIdealityConfig {
        read_sigma: 0.05,
        drift_nu: 0.02,
        drift_t0_cycles: 10_000,
        ir_drop_alpha: 0.01,
        seed: 2019,
    }
}

/// The ideal config (with a decoy seed) must be bit-identical to the
/// absent config on every engine, and attribute zero degraded MVMs.
#[test]
fn ideal_config_is_bit_identical_to_absent_on_every_engine() {
    let options = puma_compiler::CompilerOptions::default();
    let absent = small_node_config(16);
    let mut ideal = absent;
    // A nonzero seed with all knobs zero is still ideal; it must not
    // switch code paths.
    ideal.non_ideality = NonIdealityConfig { seed: 0xDEAD_BEEF, ..NonIdealityConfig::ideal() };
    for case in modelgen::simulable_zoo_cases(31) {
        for engine in ENGINES {
            let (out_a, stats_a) = run_with_engine(
                &case.model,
                &absent,
                &options,
                &case.inputs,
                SimMode::Functional,
                engine,
            )
            .expect("absent-config run");
            let (out_b, stats_b) = run_with_engine(
                &case.model,
                &ideal,
                &options,
                &case.inputs,
                SimMode::Functional,
                engine,
            )
            .expect("ideal-config run");
            assert_eq!(out_a, out_b, "{} {engine:?}: outputs diverged", case.model.name());
            assert_eq!(stats_a, stats_b, "{} {engine:?}: stats diverged", case.model.name());
            assert_eq!(stats_a.degraded_mvm_activations, 0, "ideal path must attribute none");
        }
    }
}

/// A degraded config produces bit-identical outputs and stats across all
/// three engines, replays bit-exactly, and attributes every MVM.
#[test]
fn degraded_config_is_engine_invariant_and_replays() {
    let options = puma_compiler::CompilerOptions::default();
    let mut cfg = small_node_config(16);
    cfg.non_ideality = degraded_config();
    cfg.tile.core.mvmu.adc_bits_override = Some(12);
    for case in modelgen::simulable_zoo_cases(47) {
        let (ref_out, ref_stats) = run_with_engine(
            &case.model,
            &cfg,
            &options,
            &case.inputs,
            SimMode::Functional,
            SimEngine::Reference,
        )
        .expect("reference degraded run");
        assert!(ref_stats.mvmu_activations > 0);
        assert_eq!(
            ref_stats.degraded_mvm_activations, ref_stats.mvmu_activations,
            "every functional MVM must be attributed to the degraded path"
        );
        for engine in ENGINES {
            for _rerun in 0..2 {
                let (out, stats) = run_with_engine(
                    &case.model,
                    &cfg,
                    &options,
                    &case.inputs,
                    SimMode::Functional,
                    engine,
                )
                .expect("degraded run");
                assert_eq!(ref_out, out, "{} {engine:?}: outputs diverged", case.model.name());
                assert_eq!(ref_stats, stats, "{} {engine:?}: stats diverged", case.model.name());
            }
        }
    }
}

/// Reseeding the non-ideality config changes functional outputs (the
/// noise is real) without touching timing statistics (cycles and energy
/// come from the timing model, which the degraded path never alters).
#[test]
fn reseeding_changes_outputs_but_not_timing() {
    let options = puma_compiler::CompilerOptions::default();
    let mut cfg = small_node_config(16);
    cfg.non_ideality = NonIdealityConfig { read_sigma: 0.3, seed: 1, ..NonIdealityConfig::ideal() };
    let case = &modelgen::simulable_zoo_cases(7)[0];
    let (out_a, stats_a) = run_with_engine(
        &case.model,
        &cfg,
        &options,
        &case.inputs,
        SimMode::Functional,
        SimEngine::RunAhead,
    )
    .expect("seed-1 run");
    cfg.non_ideality.seed = 2;
    let (out_b, stats_b) = run_with_engine(
        &case.model,
        &cfg,
        &options,
        &case.inputs,
        SimMode::Functional,
        SimEngine::RunAhead,
    )
    .expect("seed-2 run");
    assert_ne!(out_a, out_b, "independent seeds must realize different noise");
    assert_eq!(stats_a.cycles, stats_b.cycles, "noise must not move simulated time");
    assert_eq!(stats_a.energy, stats_b.energy, "noise must not move modeled energy");
}

/// Timing mode never materializes weights, so non-ideality (a functional
/// perturbation) must leave timing runs untouched on every engine.
#[test]
fn timing_mode_ignores_non_ideality() {
    let options = puma_compiler::CompilerOptions::default();
    let absent = small_node_config(16);
    let mut noisy = absent;
    noisy.non_ideality = degraded_config();
    let case = &modelgen::simulable_zoo_cases(7)[0];
    for engine in ENGINES {
        let (_, stats_a) =
            run_with_engine(&case.model, &absent, &options, &case.inputs, SimMode::Timing, engine)
                .expect("absent timing run");
        let (_, stats_b) =
            run_with_engine(&case.model, &noisy, &options, &case.inputs, SimMode::Timing, engine)
                .expect("noisy timing run");
        assert_eq!(stats_a, stats_b, "{engine:?}: timing must ignore non-ideality");
        assert_eq!(stats_b.degraded_mvm_activations, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fuzzed MLPs: ideal ≡ absent and degraded replay, across engines.
    #[test]
    fn fuzzed_mlps_uphold_both_contracts(case in modelgen::mlp_case(), seed in 1u64..1000) {
        let options = puma_compiler::CompilerOptions::default();
        let absent = small_node_config(32);
        let mut ideal = absent;
        ideal.non_ideality = NonIdealityConfig { seed, ..NonIdealityConfig::ideal() };
        let mut noisy = absent;
        noisy.non_ideality =
            NonIdealityConfig { read_sigma: 0.1, seed, ..NonIdealityConfig::ideal() };
        noisy.tile.core.mvmu =
            MvmuConfig { adc_bits_override: Some(13), ..noisy.tile.core.mvmu };
        let mut noisy_runs = Vec::new();
        for engine in ENGINES {
            let run = |cfg| run_with_engine(
                &case.model, cfg, &options, &case.inputs, SimMode::Functional, engine,
            ).expect("functional run");
            prop_assert_eq!(run(&absent), run(&ideal), "{:?}: ideal must equal absent", engine);
            noisy_runs.push(run(&noisy));
            prop_assert_eq!(&noisy_runs[0], &run(&noisy), "{:?}: degraded replay", engine);
        }
        prop_assert_eq!(&noisy_runs[0], &noisy_runs[1], "run-ahead degraded leg diverged");
        prop_assert_eq!(&noisy_runs[0], &noisy_runs[2], "compiled degraded leg diverged");
    }
}
