//! Relocation differential suite: loading a compiled image at any tile
//! base must be **bit-identical** to loading it at base 0 — same
//! outputs, same cycle counts, same per-component energy. Relocation
//! ([`puma_compiler::relocate_image`]) is a pure renumbering: event
//! priorities shift uniformly (preserving every same-cycle tie-break),
//! per-core RNG streams are seeded by tile-*local* core index, crossbar
//! noise is keyed by slice position inside the model, and the prepended
//! idle tiles never prime — so any divergence here is a renumbering bug,
//! not tolerance noise.
//!
//! The suite honours `PUMA_ENGINE`, so CI's three-engine matrix pins the
//! invariant under the reference, run-ahead, and compiled engines.

use proptest::prelude::*;
use puma_compiler::relocate_image;
use puma_core::config::NodeConfig;
use puma_nn::cnn::build_cnn;
use puma_sim::{NodeSim, SimMode};
use puma_testkit::harness::{default_engine, run_relocated, seeded_values, small_node_config};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;

/// Runs one model case at tile base 0 and at `base` under the suite
/// engine and asserts exact equality of outputs and statistics.
fn assert_relocation_invariant(
    case: &modelgen::ModelCase,
    cfg: &NodeConfig,
    base: usize,
    mode: SimMode,
) {
    let options = puma_compiler::CompilerOptions::default();
    let engine = default_engine();
    // Both legs run on the *same machine*: widen the fabric once so the
    // relocated footprint fits, instead of letting each leg grow its own
    // tile count (mesh geometry derives from capacity).
    let compiled = puma_compiler::compile(&case.model, cfg, &options).expect("compile");
    let mut cfg = *cfg;
    cfg.tiles_per_node = cfg.tiles_per_node.max(compiled.stats.tiles_used + base);
    let cfg = &cfg;
    let (out0, stats0) = run_relocated(&case.model, cfg, &options, &case.inputs, 0, mode, engine)
        .expect("base-0 run");
    let (out, stats) = run_relocated(&case.model, cfg, &options, &case.inputs, base, mode, engine)
        .expect("relocated run");
    assert_eq!(out0, out, "outputs must be bit-identical at base {base}");
    assert_eq!(stats0, stats, "RunStats must be bit-identical at base {base}");
    assert!(stats0.cycles > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed MLPs: relocate(base) ∘ run ≡ run at base 0.
    #[test]
    fn relocated_mlps_match_base0(case in modelgen::mlp_case(), base in 1usize..12) {
        assert_relocation_invariant(&case, &small_node_config(32), base, SimMode::Functional);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fuzzed unrolled LSTM stacks survive relocation bit-exactly.
    #[test]
    fn relocated_lstms_match_base0(case in modelgen::lstm_case(), base in 1usize..8) {
        assert_relocation_invariant(&case, &small_node_config(32), base, SimMode::Functional);
    }

    /// Timing mode charges through different store/receive paths; the
    /// relocated run must still agree cycle-for-cycle.
    #[test]
    fn relocated_mlps_match_base0_in_timing_mode(
        case in modelgen::mlp_case(),
        base in 1usize..8,
    ) {
        assert_relocation_invariant(&case, &small_node_config(32), base, SimMode::Timing);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fuzzed LeNet-class CNNs compile through the control-flow code
    /// generator (branch-heavy loops, indexed addressing); their images
    /// relocate bit-exactly too.
    #[test]
    fn relocated_cnns_match_base0(spec in modelgen::cnn_spec(), seed in 0u64..500) {
        let cfg = NodeConfig::default();
        let cnn = build_cnn(&spec, &cfg, true, seed).unwrap();
        let (c, h, w) = cnn.input_shape;
        let image_in: Vec<f32> = seeded_values(c * h * w, seed);
        let engine = default_engine();
        let base = 3 + (seed as usize % 5);
        // One machine for both legs: size the fabric for the farthest base
        // up front so mesh geometry matches between the runs.
        let mut cfg = cfg;
        cfg.tiles_per_node = cfg.tiles_per_node.max(cnn.image.tiles.len() + base);
        let run = |base: usize| {
            let relocated = relocate_image(&cnn.image, base).unwrap();
            let mut sim =
                NodeSim::new(cfg, &relocated, SimMode::Functional, &NoiseModel::noiseless())
                    .unwrap();
            sim.set_engine(engine);
            sim.write_input(&cnn.input_name, &image_in).unwrap();
            sim.run().unwrap();
            (sim.read_output(&cnn.output_name).unwrap(), sim.stats().clone())
        };
        let (logits0, stats0) = run(0);
        let (logits, stats) = run(base);
        prop_assert_eq!(logits0, logits, "CNN outputs must be bit-identical at base {}", base);
        prop_assert_eq!(stats0, stats, "CNN RunStats must be bit-identical at base {}", base);
    }
}

/// The Table 5 zoo entries (MLP / LSTM / RNN families) relocate
/// bit-exactly at several bases.
#[test]
fn relocated_zoo_models_match_base0() {
    let cfg = NodeConfig::default();
    for (case, base) in modelgen::simulable_zoo_cases(7).iter().zip([3usize, 9, 17]) {
        assert_relocation_invariant(case, &cfg, base, SimMode::Functional);
    }
}
