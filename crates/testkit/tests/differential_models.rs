//! The core differential property: for every generated model, the
//! compiled program running on the functional simulator agrees with the
//! host-side reference semantics within fixed-point tolerance.
//!
//! Three independent implementations are cross-checked per family:
//! the graph compiler + PUMAsim vs `Model::evaluate_reference` for
//! MLP/LSTM graphs, and the looped CNN code generator + PUMAsim vs
//! `ReferenceCnn::forward` for LeNet-class convnets.

use proptest::prelude::*;
use puma_nn::cnn::build_cnn;
use puma_sim::{NodeSim, SimMode};
use puma_testkit::harness::{
    compare_outputs, reference_outputs, run_functional, seeded_values, small_node_config,
};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random Table-5-shaped MLPs: simulator == reference.
    #[test]
    fn random_mlps_match_reference(case in modelgen::mlp_case()) {
        let got = run_functional(&case.model, &small_node_config(32), &case.inputs).unwrap();
        let want = reference_outputs(&case.model, &case.inputs).unwrap();
        if let Err(msg) = compare_outputs(&got, &want, case.tolerance) {
            prop_assert!(false, "MLP diverged: {msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random unrolled LSTM stacks (shared weights across steps):
    /// simulator == reference.
    #[test]
    fn random_lstms_match_reference(case in modelgen::lstm_case()) {
        let got = run_functional(&case.model, &small_node_config(32), &case.inputs).unwrap();
        let want = reference_outputs(&case.model, &case.inputs).unwrap();
        if let Err(msg) = compare_outputs(&got, &want, case.tolerance) {
            prop_assert!(false, "LSTM diverged: {msg}");
        }
    }

    /// Random LeNet-class CNNs through the control-flow code generator:
    /// simulated logits == host reference forward pass.
    #[test]
    fn random_cnns_match_loop_reference(spec in modelgen::cnn_spec(), seed in 0u64..1000) {
        let cfg = puma_core::config::NodeConfig::default();
        let cnn = build_cnn(&spec, &cfg, true, seed).unwrap();
        let (c, h, w) = cnn.input_shape;
        let image: Vec<f32> = seeded_values(c * h * w, seed);
        let mut sim =
            NodeSim::new(cfg, &cnn.image, SimMode::Functional, &NoiseModel::noiseless()).unwrap();
        sim.write_input(&cnn.input_name, &image).unwrap();
        sim.run().unwrap();
        let logits = sim.read_output(&cnn.output_name).unwrap();
        let reference = cnn.reference.forward(&image);
        prop_assert_eq!(logits.len(), reference.len());
        for (i, (g, r)) in logits.iter().zip(reference.iter()).enumerate() {
            prop_assert!(
                (g - r).abs() < 0.06,
                "logit[{}]: simulated {} vs reference {} (spec {})",
                i, g, r, spec.name
            );
        }
    }
}

/// The small graph-compilable zoo entries (Table 5 / Fig. 4 set) run
/// end-to-end and agree with the reference — the fixed-corpus complement
/// to the fuzzed families above.
#[test]
fn zoo_workloads_match_reference() {
    for case in modelgen::simulable_zoo_cases(11) {
        let got =
            run_functional(&case.model, &puma_core::config::NodeConfig::default(), &case.inputs)
                .unwrap_or_else(|e| panic!("{} failed to run: {e:?}", case.model.name()));
        let want = reference_outputs(&case.model, &case.inputs).unwrap();
        if let Err(msg) = compare_outputs(&got, &want, case.tolerance) {
            panic!("{} diverged: {msg}", case.model.name());
        }
    }
}
