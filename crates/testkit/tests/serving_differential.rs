//! Serving differential suite: the async serving stack must be a pure
//! *scheduling* layer — for **any** worker count and **any** queue
//! schedule (arrival pattern + queue bound), every completed request's
//! outputs and statistics are bit-identical to `BatchRunner::run_batch`
//! and to sequential `ModelRunner` execution. Latencies, shed decisions,
//! and percentiles are functions of the simulated clock alone, so two
//! serves of the same schedule replay identically.
//!
//! The pipelined path is held to the same bar: a 2-node sharded model
//! serving a request stream with `ServeRunner::with_pipeline` keeps
//! outputs bit-identical to single-node sequential execution *while* more
//! than one request is simultaneously resident across the nodes (pipeline
//! sharding actually exercised, not just configured).

use proptest::prelude::*;
use puma::runtime::{
    BatchRequest, BatchRunner, Disposition, ModelRunner, RequestError, ServeRequest, ServeRunner,
};
use puma_compiler::{CompilerOptions, Partitioning};
use puma_core::timing::TrafficPattern;
use puma_sim::SimMode;
use puma_testkit::harness::{default_engine, seeded_values, small_node_config};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;
use std::collections::HashMap;

/// Builds `n` requests for a generated model case, each with its own
/// seeded input values.
fn fuzz_requests(case: &modelgen::ModelCase, n: usize) -> Vec<BatchRequest> {
    (0..n)
        .map(|r| {
            BatchRequest::new(
                case.inputs
                    .iter()
                    .enumerate()
                    .map(|(i, (name, values))| {
                        (name.clone(), seeded_values(values.len(), 7000 + 31 * r as u64 + i as u64))
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Sequential reference: each request through a fresh `ModelRunner` run.
fn sequential_outputs(
    case: &modelgen::ModelCase,
    requests: &[BatchRequest],
    cfg: &puma_core::config::NodeConfig,
) -> Vec<HashMap<String, Vec<f32>>> {
    let mut runner = ModelRunner::functional(&case.model, cfg).expect("sequential runner");
    requests
        .iter()
        .map(|req| {
            let inputs: Vec<(&str, Vec<f32>)> =
                req.inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            runner.run(&inputs).expect("sequential run")
        })
        .collect()
}

/// Asserts one serve outcome's completed requests match the sequential
/// outputs bit-for-bit, returning how many completed.
fn assert_completed_match_sequential(
    outcome: &puma::runtime::ServeOutcome,
    sequential: &[HashMap<String, Vec<f32>>],
) -> usize {
    let mut completed = 0;
    for (i, served) in outcome.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Completed { result, start, finish } => {
                assert_eq!(
                    result.outputs, sequential[i],
                    "request {i}: serving must not change outputs"
                );
                assert!(finish >= start && *start >= served.arrival);
                completed += 1;
            }
            Disposition::Shed => {}
            Disposition::Failed(err) => panic!("request {i} failed: {err}"),
        }
    }
    assert_eq!(completed, outcome.completed());
    completed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fuzzed MLPs/LSTMs: any worker count × any open-loop schedule gives
    /// the sequential outputs; with an unbounded queue nothing is shed.
    #[test]
    fn serving_matches_sequential_for_any_workers_and_schedule(
        case in modelgen::any_case(),
        workers in 1usize..4,
    ) {
        let cfg = small_node_config(8);
        let requests = fuzz_requests(&case, 5);
        let sequential = sequential_outputs(&case, &requests, &cfg);
        let runner = ServeRunner::functional(&case.model, &cfg)
            .expect("serve runner")
            .with_engine(default_engine())
            .with_workers(workers)
            .with_host_threads(3);
        for pattern in [
            TrafficPattern::Batch,
            TrafficPattern::Uniform { interval: 1000 },
            TrafficPattern::Poisson { mean_interarrival: 2000.0, seed: 11 },
        ] {
            let outcome = runner.serve_pattern(&requests, &pattern).expect("serve");
            prop_assert_eq!(outcome.shed, 0, "unbounded queues never shed");
            let completed = assert_completed_match_sequential(&outcome, &sequential);
            prop_assert_eq!(completed, requests.len());
            prop_assert_eq!(outcome.latency.count, requests.len());
            prop_assert!(outcome.latency.p50 <= outcome.latency.p95);
            prop_assert!(outcome.latency.p95 <= outcome.latency.p99);
            prop_assert!(outcome.latency.p99 <= outcome.latency.max);
        }
    }

    /// The same schedule served twice replays identically: dispositions,
    /// latencies, percentiles, and aggregate statistics.
    #[test]
    fn serving_replays_identically(case in modelgen::mlp_case()) {
        let cfg = small_node_config(8);
        let requests = fuzz_requests(&case, 6);
        let runner = ServeRunner::functional(&case.model, &cfg)
            .expect("serve runner")
            .with_engine(default_engine())
            .with_workers(2)
            .with_queue_depth(Some(1));
        let pattern = TrafficPattern::Poisson { mean_interarrival: 500.0, seed: 3 };
        let a = runner.serve_pattern(&requests, &pattern).expect("first serve");
        let b = runner.serve_pattern(&requests, &pattern).expect("second serve");
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.makespan_cycles, b.makespan_cycles);
        for (ra, rb) in a.results.iter().zip(b.results.iter()) {
            prop_assert_eq!(ra.latency(), rb.latency());
            prop_assert_eq!(
                matches!(ra.disposition, Disposition::Shed),
                matches!(rb.disposition, Disposition::Shed)
            );
        }
    }
}

/// The worker count must not change *anything* observable but wall time:
/// outputs, per-request stats, latencies, and shed decisions — compared
/// across 1/2/5 workers under an overloaded bounded queue.
#[test]
fn worker_count_changes_only_latency_never_outputs() {
    let case = &modelgen::simulable_zoo_cases(23)[0];
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 8);
    let sequential = sequential_outputs(case, &requests, &cfg);
    // Arrivals far faster than service: more workers complete more
    // requests before the depth-2 queue sheds.
    let pattern = TrafficPattern::Uniform { interval: 10 };
    let mut completed_by_workers = Vec::new();
    for workers in [1usize, 2, 5] {
        let runner = ServeRunner::functional(&case.model, &cfg)
            .expect("serve runner")
            .with_engine(default_engine())
            .with_workers(workers)
            .with_queue_depth(Some(2));
        let outcome = runner.serve_pattern(&requests, &pattern).expect("serve");
        let completed = assert_completed_match_sequential(&outcome, &sequential);
        assert_eq!(completed + outcome.shed, requests.len());
        completed_by_workers.push(completed);
    }
    assert!(
        completed_by_workers.windows(2).all(|w| w[0] <= w[1]),
        "more workers must never shed more: {completed_by_workers:?}"
    );
}

/// `run_batch` is the serve special case (all arrivals at 0, unbounded
/// queue): outputs and aggregate stats agree bit-for-bit.
#[test]
fn batch_wrapper_equals_serving_stack() {
    let case = &modelgen::simulable_zoo_cases(29)[0];
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 6);
    let batch = BatchRunner::functional(&case.model, &cfg)
        .expect("batch runner")
        .with_engine(default_engine())
        .with_threads(3);
    let batch_outcome = batch.run_batch(&requests).expect("batch");
    let serve_outcome =
        batch.serving().serve_pattern(&requests, &TrafficPattern::Batch).expect("serve");
    assert_eq!(batch_outcome.ok_count(), serve_outcome.completed());
    assert_eq!(batch_outcome.stats, serve_outcome.stats);
    for (b, s) in batch_outcome.results.iter().zip(serve_outcome.results.iter()) {
        let b = b.as_ref().expect("batch request ok");
        match &s.disposition {
            Disposition::Completed { result, .. } => {
                assert_eq!(&b.outputs, &result.outputs);
                assert_eq!(&b.stats, &result.stats);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}

/// Pipeline sharding: a 2-node sharded model serving a stream keeps
/// outputs bit-identical to single-node sequential execution while >1
/// request is in flight across the nodes.
#[test]
fn pipelined_sharded_serving_matches_sequential_with_overlap() {
    let case = &modelgen::simulable_zoo_cases(41)[0]; // MLP: feed-forward stages
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 6);
    let sequential = sequential_outputs(case, &requests, &cfg);
    let runner = ServeRunner::new(
        &case.model,
        &cfg,
        &CompilerOptions {
            partitioning: Partitioning::Sharded { nodes: 2 },
            ..CompilerOptions::default()
        },
        SimMode::Functional,
        &NoiseModel::noiseless(),
    )
    .expect("sharded serve runner")
    .with_engine(default_engine())
    .with_pipeline(true);
    assert_eq!(runner.nodes_per_request(), 2);
    let outcome = runner.serve_pattern(&requests, &TrafficPattern::Batch).expect("serve");
    let completed = assert_completed_match_sequential(&outcome, &sequential);
    assert_eq!(completed, requests.len());
    assert!(
        outcome.max_concurrent > 1,
        "pipeline sharding must overlap requests (got {})",
        outcome.max_concurrent
    );
    let stages = outcome.stages.as_ref().expect("pipeline reports stage occupancy");
    assert_eq!(stages.len(), 2);
    for stage in stages {
        assert_eq!(stage.requests, requests.len() as u64);
        assert!(stage.occupied_cycles > 0);
    }
    // Per-request interconnect traffic is attributed to the request.
    let internode: u64 = outcome
        .results
        .iter()
        .filter_map(|r| match &r.disposition {
            Disposition::Completed { result, .. } => Some(result.stats.internode_words),
            _ => None,
        })
        .sum();
    assert!(internode > 0, "the shard boundary must carry traffic");
}

/// Pipelined LSTMs (recurrent traffic ping-pongs across the shard
/// boundary) under a paced arrival schedule and a bounded queue: outputs
/// stay bit-identical and the serve replays deterministically.
#[test]
fn pipelined_lstm_with_bounded_queue_is_deterministic() {
    let case = &modelgen::simulable_zoo_cases(17)[1]; // LSTM-26-120-61
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 5);
    let sequential = sequential_outputs(case, &requests, &cfg);
    let runner = ServeRunner::new(
        &case.model,
        &cfg,
        &CompilerOptions {
            partitioning: Partitioning::Sharded { nodes: 2 },
            ..CompilerOptions::default()
        },
        SimMode::Functional,
        &NoiseModel::noiseless(),
    )
    .expect("sharded serve runner")
    .with_engine(default_engine())
    .with_pipeline(true)
    .with_queue_depth(Some(2));
    let pattern = TrafficPattern::Poisson { mean_interarrival: 5000.0, seed: 19 };
    let a = runner.serve_pattern(&requests, &pattern).expect("first serve");
    assert_completed_match_sequential(&a, &sequential);
    let b = runner.serve_pattern(&requests, &pattern).expect("second serve");
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.stats, b.stats);
}

/// A malformed request never occupies a queue slot — in either serving
/// mode, a depth-1 queue still admits the valid request that arrives
/// after it (the shed policy must not diverge between the replicated and
/// pipelined implementations).
#[test]
fn malformed_request_never_occupies_a_queue_slot() {
    let case = &modelgen::simulable_zoo_cases(61)[0];
    let cfg = small_node_config(8);
    let valid = fuzz_requests(case, 2);
    // r0 valid (long service, worker busy), r1 malformed, r2 valid: with
    // depth 1, r2 completes iff r1 took no slot.
    let serve_requests = vec![
        ServeRequest::new(0, valid[0].inputs.clone()),
        ServeRequest::new(1, vec![("nope".to_string(), vec![0.0; 4])]),
        ServeRequest::new(2, valid[1].inputs.clone()),
    ];
    let sharded_options = CompilerOptions {
        partitioning: Partitioning::Sharded { nodes: 2 },
        ..CompilerOptions::default()
    };
    let runners = [
        ServeRunner::functional(&case.model, &cfg).expect("replicated runner"),
        ServeRunner::new(
            &case.model,
            &cfg,
            &sharded_options,
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .expect("pipelined runner")
        .with_pipeline(true),
    ];
    for runner in runners {
        let outcome = runner.with_queue_depth(Some(1)).serve(&serve_requests).expect("serve");
        assert!(matches!(outcome.results[0].disposition, Disposition::Completed { .. }));
        assert!(matches!(outcome.results[1].disposition, Disposition::Failed(_)));
        assert!(
            matches!(outcome.results[2].disposition, Disposition::Completed { .. }),
            "a malformed request must not displace a valid one from the queue"
        );
        assert_eq!(outcome.shed, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every built-in traffic pattern yields non-decreasing arrivals for
    /// any length, interval, rate, and seed — the serving stack's
    /// monotone-schedule precondition holds by construction for
    /// generated schedules.
    #[test]
    fn traffic_patterns_always_yield_monotone_arrivals(
        n in 0usize..200,
        interval in 0u64..10_000,
        mean in 1.0f64..10_000.0,
        seed in any::<u64>(),
    ) {
        for pattern in [
            TrafficPattern::Batch,
            TrafficPattern::Uniform { interval },
            TrafficPattern::Poisson { mean_interarrival: mean, seed },
        ] {
            let arrivals = pattern.arrivals(n);
            prop_assert_eq!(arrivals.len(), n);
            prop_assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{:?} produced a non-monotone schedule: {:?}",
                pattern,
                arrivals
            );
        }
    }
}

/// Hand-built schedules whose arrivals go backwards are rejected with a
/// typed error naming the offending request — in both serving modes —
/// instead of being silently reordered.
#[test]
fn serve_rejects_non_monotone_arrivals_with_typed_error() {
    let case = &modelgen::simulable_zoo_cases(47)[0];
    let cfg = small_node_config(8);
    let valid = fuzz_requests(case, 2);
    let serve_requests = vec![
        ServeRequest::new(100, valid[0].inputs.clone()),
        ServeRequest::new(50, valid[1].inputs.clone()),
    ];
    let sharded_options = CompilerOptions {
        partitioning: Partitioning::Sharded { nodes: 2 },
        ..CompilerOptions::default()
    };
    let runners = [
        ServeRunner::functional(&case.model, &cfg).expect("replicated runner"),
        ServeRunner::new(
            &case.model,
            &cfg,
            &sharded_options,
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .expect("pipelined runner")
        .with_pipeline(true),
    ];
    for runner in runners {
        let err = runner.serve(&serve_requests).expect_err("backwards arrivals must be rejected");
        assert!(
            matches!(err, puma_core::PumaError::InvalidConfig { .. }),
            "expected a typed config rejection, got {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("non-decreasing") && msg.contains("request 1"), "{msg}");
    }
}

/// The virtual-time deadline watchdog on the replicated path: a deadline
/// shorter than the service time aborts every request with a typed
/// disposition at exactly `arrival + deadline`; a generous deadline
/// changes nothing against the unwatched serve.
#[test]
fn replicated_deadline_watchdog_aborts_typed_and_generous_deadline_is_inert() {
    let case = &modelgen::simulable_zoo_cases(59)[0];
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 4);
    let pattern = TrafficPattern::Uniform { interval: 700 };
    let runner = || {
        ServeRunner::functional(&case.model, &cfg)
            .expect("serve runner")
            .with_engine(default_engine())
            .with_workers(2)
    };
    let unwatched = runner().serve_pattern(&requests, &pattern).expect("unwatched serve");
    assert_eq!(unwatched.completed(), requests.len());
    assert_eq!(unwatched.timed_out, 0);
    // Deadline 1: no request can finish within one cycle of arriving.
    let strict =
        runner().with_deadline(Some(1)).serve_pattern(&requests, &pattern).expect("strict serve");
    assert_eq!(strict.completed(), 0);
    assert_eq!(strict.timed_out, requests.len());
    for (i, served) in strict.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Failed(RequestError::Deadline { cycle, what }) => {
                assert_eq!(
                    *cycle,
                    served.arrival + 1,
                    "request {i} must abort at arrival+deadline"
                );
                assert!(what.contains(&format!("request {i}")), "{what}");
            }
            other => panic!("request {i}: expected a deadline abort, got {other:?}"),
        }
    }
    // A deadline far beyond the makespan is observationally absent.
    let generous = runner()
        .with_deadline(Some(u64::MAX / 2))
        .serve_pattern(&requests, &pattern)
        .expect("generous serve");
    assert_eq!(generous.timed_out, 0);
    assert_eq!(generous.latency, unwatched.latency);
    assert_eq!(generous.stats, unwatched.stats);
    assert_eq!(generous.makespan_cycles, unwatched.makespan_cycles);
}

/// The same watchdog contract on the pipelined path: typed aborts under
/// a strict deadline, bit-identical behaviour under a generous one.
#[test]
fn pipelined_deadline_watchdog_aborts_typed_and_generous_deadline_is_inert() {
    let case = &modelgen::simulable_zoo_cases(41)[0];
    let cfg = small_node_config(8);
    let requests = fuzz_requests(case, 4);
    let pattern = TrafficPattern::Uniform { interval: 900 };
    let runner = || {
        ServeRunner::new(
            &case.model,
            &cfg,
            &CompilerOptions {
                partitioning: Partitioning::Sharded { nodes: 2 },
                ..CompilerOptions::default()
            },
            SimMode::Functional,
            &NoiseModel::noiseless(),
        )
        .expect("pipelined runner")
        .with_engine(default_engine())
        .with_pipeline(true)
    };
    let unwatched = runner().serve_pattern(&requests, &pattern).expect("unwatched serve");
    assert_eq!(unwatched.completed(), requests.len());
    let strict =
        runner().with_deadline(Some(10)).serve_pattern(&requests, &pattern).expect("strict serve");
    assert_eq!(strict.completed(), 0);
    assert_eq!(strict.timed_out, requests.len());
    for (i, served) in strict.results.iter().enumerate() {
        match &served.disposition {
            Disposition::Failed(RequestError::Deadline { cycle, .. }) => {
                assert_eq!(
                    *cycle,
                    served.arrival + 10,
                    "request {i} must abort at arrival+deadline"
                );
            }
            other => panic!("request {i}: expected a deadline abort, got {other:?}"),
        }
    }
    let generous = runner()
        .with_deadline(Some(u64::MAX / 2))
        .serve_pattern(&requests, &pattern)
        .expect("generous serve");
    assert_eq!(generous.timed_out, 0);
    assert_eq!(generous.latency, unwatched.latency);
    assert_eq!(generous.stats, unwatched.stats);
    assert_eq!(generous.makespan_cycles, unwatched.makespan_cycles);
}

/// A malformed request is rejected at submission without disturbing the
/// pipeline's other requests.
#[test]
fn pipelined_bad_request_fails_alone() {
    let case = &modelgen::simulable_zoo_cases(53)[0];
    let cfg = small_node_config(8);
    let mut requests = fuzz_requests(case, 3);
    requests[1] = BatchRequest::new(vec![("nope".to_string(), vec![0.0; 4])]);
    let runner = ServeRunner::new(
        &case.model,
        &cfg,
        &CompilerOptions {
            partitioning: Partitioning::Sharded { nodes: 2 },
            ..CompilerOptions::default()
        },
        SimMode::Functional,
        &NoiseModel::noiseless(),
    )
    .expect("sharded serve runner")
    .with_pipeline(true);
    let serve_requests: Vec<ServeRequest> =
        requests.iter().map(|r| ServeRequest::new(0, r.inputs.clone())).collect();
    let outcome = runner.serve(&serve_requests).expect("serve");
    assert!(matches!(outcome.results[0].disposition, Disposition::Completed { .. }));
    assert!(matches!(outcome.results[1].disposition, Disposition::Failed(_)));
    assert!(matches!(outcome.results[2].disposition, Disposition::Completed { .. }));
}
