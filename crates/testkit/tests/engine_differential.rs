//! Engine-differential suite: the run-ahead and compiled execution
//! engines must be **bit-identical** to the reference per-instruction
//! event loop — same outputs, same cycle counts, same per-component
//! energy, same blocked cycles — on fuzzed models from every Table 5
//! family. Run-ahead only reorders *when* core-local instructions execute
//! relative to the event queue (and the compiled engine additionally
//! pre-decodes the programs), never *what* they compute or when
//! synchronization happens, so any divergence here is a scheduler or
//! segment-builder bug, not tolerance noise.

use proptest::prelude::*;
use puma_core::config::NodeConfig;
use puma_nn::cnn::build_cnn;
use puma_sim::{NodeSim, RunStats, SimEngine, SimMode};
use puma_testkit::harness::{run_with_engine, seeded_values, small_node_config};
use puma_testkit::modelgen;
use puma_xbar::NoiseModel;

/// Runs one model case under all three engines in `mode` and asserts
/// exact equality of outputs and statistics.
fn assert_engines_agree(case: &modelgen::ModelCase, mode: SimMode) {
    let cfg = small_node_config(32);
    let options = puma_compiler::CompilerOptions::default();
    let (ref_out, ref_stats) =
        run_with_engine(&case.model, &cfg, &options, &case.inputs, mode, SimEngine::Reference)
            .expect("reference engine runs");
    for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
        let (out, stats) = run_with_engine(&case.model, &cfg, &options, &case.inputs, mode, engine)
            .expect("optimized engine runs");
        assert_eq!(ref_out, out, "{engine:?}: outputs must be bit-identical");
        assert_eq!(ref_stats, stats, "{engine:?}: RunStats must be bit-identical");
    }
    assert!(ref_stats.cycles > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fuzzed MLPs: run-ahead ≡ reference, functionally and in stats.
    #[test]
    fn run_ahead_matches_reference_on_mlps(case in modelgen::mlp_case()) {
        assert_engines_agree(&case, SimMode::Functional);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fuzzed unrolled LSTM stacks: run-ahead ≡ reference.
    #[test]
    fn run_ahead_matches_reference_on_lstms(case in modelgen::lstm_case()) {
        assert_engines_agree(&case, SimMode::Functional);
    }

    /// Timing mode takes different store/receive paths (probe payloads);
    /// the engines must still agree cycle-for-cycle.
    #[test]
    fn run_ahead_matches_reference_in_timing_mode(case in modelgen::mlp_case()) {
        assert_engines_agree(&case, SimMode::Timing);
    }

    /// Fuzzed LeNet-class CNNs through the control-flow code generator:
    /// heavy branch/indexed-addressing loops, the worst case for a
    /// run-ahead scheduler.
    #[test]
    fn run_ahead_matches_reference_on_cnns(spec in modelgen::cnn_spec(), seed in 0u64..500) {
        let cfg = NodeConfig::default();
        let cnn = build_cnn(&spec, &cfg, true, seed).unwrap();
        let (c, h, w) = cnn.input_shape;
        let image: Vec<f32> = seeded_values(c * h * w, seed);
        let run = |engine: SimEngine| -> (Vec<f32>, RunStats) {
            let mut sim =
                NodeSim::new(cfg, &cnn.image, SimMode::Functional, &NoiseModel::noiseless())
                    .unwrap();
            sim.set_engine(engine);
            sim.write_input(&cnn.input_name, &image).unwrap();
            sim.run().unwrap();
            (sim.read_output(&cnn.output_name).unwrap(), sim.stats().clone())
        };
        let (ref_logits, ref_stats) = run(SimEngine::Reference);
        for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
            let (logits, stats) = run(engine);
            prop_assert_eq!(&ref_logits, &logits, "{:?}: CNN logits must be bit-identical", engine);
            prop_assert_eq!(&ref_stats, &stats, "{:?}: CNN RunStats must be bit-identical", engine);
        }
    }
}

/// The fixed zoo corpus (multi-tile MLP/LSTM/RNN images with real
/// send/receive traffic) agrees across engines in both modes.
#[test]
fn engines_agree_on_zoo_corpus() {
    for case in modelgen::simulable_zoo_cases(23) {
        for mode in [SimMode::Functional, SimMode::Timing] {
            let cfg = NodeConfig::default();
            let options = puma_compiler::CompilerOptions::default();
            let (ref_out, ref_stats) = run_with_engine(
                &case.model,
                &cfg,
                &options,
                &case.inputs,
                mode,
                SimEngine::Reference,
            )
            .unwrap_or_else(|e| panic!("{} reference run failed: {e:?}", case.model.name()));
            for engine in [SimEngine::RunAhead, SimEngine::Compiled] {
                let (out, stats) =
                    run_with_engine(&case.model, &cfg, &options, &case.inputs, mode, engine)
                        .unwrap_or_else(|e| {
                            panic!("{} {engine:?} run failed: {e:?}", case.model.name())
                        });
                assert_eq!(
                    ref_out,
                    out,
                    "{} {mode:?} {engine:?}: outputs diverged",
                    case.model.name()
                );
                assert_eq!(
                    ref_stats,
                    stats,
                    "{} {mode:?} {engine:?}: stats diverged",
                    case.model.name()
                );
            }
            assert!(ref_stats.blocked_cycles > 0 || ref_stats.network_words == 0);
        }
    }
}
