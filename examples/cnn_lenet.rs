//! LeNet-5 compiled by the looped CNN code generator: genuine control
//! flow, sliding-window input reuse through the MVM filter/stride
//! operands, and layer pipelining through tile shared memory.
//!
//! Run with: `cargo run --example cnn_lenet` (use --release for speed)

use puma::nn::cnn::build_cnn;
use puma::nn::zoo;
use puma::sim::{NodeSim, SimMode};
use puma::xbar::NoiseModel;
use puma_core::config::NodeConfig;

pub fn main() -> puma_core::Result<()> {
    let cfg = NodeConfig::default();
    let cnn = build_cnn(&zoo::spec("Lenet5"), &cfg, true, 7)?;
    println!(
        "LeNet-5: {} static instructions across {} layer cores",
        cnn.static_instructions,
        cnn.image.tiles[0].cores.iter().filter(|c| !c.program.is_empty()).count()
    );
    let mut sim = NodeSim::new(cfg, &cnn.image, SimMode::Functional, &NoiseModel::noiseless())?;
    let (c, h, w) = cnn.input_shape;
    let image: Vec<f32> =
        (0..c * h * w).map(|i| if (i / 28 + i % 28) % 7 < 3 { 0.8 } else { -0.2 }).collect();
    sim.write_input(&cnn.input_name, &image)?;
    sim.run()?;
    let logits = sim.read_output(&cnn.output_name)?;
    let reference = cnn.reference.forward(&image);
    println!("simulated logits:  {logits:.3?}");
    println!("reference logits:  {reference:.3?}");
    println!(
        "latency {} cycles, {} MVM activations, energy {:.1} uJ",
        sim.stats().cycles,
        sim.stats().mvmu_activations,
        sim.stats().energy.total_nj() / 1000.0
    );
    Ok(())
}
