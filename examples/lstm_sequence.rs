//! An LSTM sequence model compiled and run on PUMA: shows weight reuse
//! across time steps (one set of crossbars, many MVM activations) and the
//! spatial-pipelining effect on latency.
//!
//! Run with: `cargo run --example lstm_sequence`

use puma::compiler::graph::Model;
use puma::nn::layers::{lstm_network, WeightFactory};
use puma::runtime::ModelRunner;
use puma_core::config::NodeConfig;

pub fn main() -> puma_core::Result<()> {
    let steps = 4;
    let width = 64;
    let mut model = Model::new("lstm_demo");
    let mut weights = WeightFactory::materialized(7);
    let outs = lstm_network(&mut model, &mut weights, width, &[(width, None)], steps)?;
    model.output("h_final", *outs.last().expect("steps > 0"));

    let mut runner = ModelRunner::functional(&model, &NodeConfig::default())?;
    println!(
        "{} LSTM steps share {} crossbars ({} static instructions)",
        steps,
        runner.compiled().stats.weight_tiles,
        runner.compiled().stats.static_instructions
    );
    let inputs: Vec<(String, Vec<f32>)> = (0..steps)
        .map(|t| (format!("x{t}"), (0..width).map(|i| ((i + t) % 5) as f32 * 0.1 - 0.2).collect()))
        .collect();
    let input_refs: Vec<(&str, Vec<f32>)> =
        inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let out = runner.run(&input_refs)?;
    println!("h_final[0..8] = {:?}", &out["h_final"][..8]);
    println!(
        "dynamic MVM activations: {} (weights written once, §3.2.5)",
        runner.stats().mvmu_activations
    );
    println!(
        "latency: {} cycles, energy {:.1} nJ",
        runner.stats().cycles,
        runner.stats().energy.total_nj()
    );
    Ok(())
}
