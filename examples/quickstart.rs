//! Quickstart: the paper's Fig. 7 example — `z = tanh(A·x + B·y)` —
//! compiled to PUMA assembly and executed on the simulator.
//!
//! Run with: `cargo run --example quickstart`

use puma::compiler::graph::Model;
use puma::runtime::ModelRunner;
use puma_core::config::NodeConfig;
use puma_core::tensor::Matrix;

pub fn main() -> puma_core::Result<()> {
    let m_dim = 128;
    let mut model = Model::new("example");
    let x = model.input("x", m_dim);
    let y = model.input("y", m_dim);
    let a = model.constant_matrix(
        "A",
        Matrix::from_fn(m_dim, m_dim, |r, c| ((r + c) % 7) as f32 * 0.02 - 0.06),
    );
    let b = model.constant_matrix(
        "B",
        Matrix::from_fn(m_dim, m_dim, |r, c| ((r * c) % 5) as f32 * 0.02 - 0.04),
    );
    let ax = model.mvm(a, x)?;
    let by = model.mvm(b, y)?;
    let sum = model.add(ax, by)?;
    let z = model.tanh(sum);
    model.output("z", z);

    let mut runner = ModelRunner::functional(&model, &NodeConfig::default())?;
    println!(
        "compiled: {} static instructions on {} cores / {} tiles, {} crossbars",
        runner.compiled().stats.static_instructions,
        runner.compiled().stats.cores_used,
        runner.compiled().stats.tiles_used,
        runner.compiled().stats.weight_tiles,
    );

    let xv: Vec<f32> = (0..m_dim).map(|i| (i as f32 / m_dim as f32) - 0.5).collect();
    let yv: Vec<f32> = (0..m_dim).map(|i| 0.25 - (i % 3) as f32 * 0.1).collect();
    let out = runner.run(&[("x", xv), ("y", yv)])?;
    println!("z[0..8] = {:?}", &out["z"][..8]);
    println!(
        "latency: {} cycles ({:.2} us), energy: {:.1} nJ",
        runner.stats().cycles,
        runner.stats().cycles as f64 / 1000.0,
        runner.stats().energy.total_nj()
    );
    Ok(())
}
