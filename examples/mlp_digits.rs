//! Train a small MLP on a synthetic digit-like task, then run inference
//! both digitally and through the analog crossbar model at several
//! precision/noise points (the Fig. 13 workflow in miniature).
//!
//! Run with: `cargo run --example mlp_digits`

use puma::nn::accuracy::accuracy_at;
use puma::nn::data::{split, synthetic_clusters};
use puma::nn::train::{train_mlp, TrainConfig};

pub fn main() -> puma_core::Result<()> {
    let data = synthetic_clusters(16, 8, 40, 0.8, 11);
    let (train, test) = split(&data, 0.8);
    println!("training a 16-32-8 MLP on {} samples...", train.len());
    let net = train_mlp(&train, &TrainConfig::default());
    println!("digital test accuracy: {:.1}%", 100.0 * net.accuracy(&test));
    for (bits, sigma) in [(2, 0.0), (2, 0.3), (6, 0.0), (6, 0.3)] {
        let p = accuracy_at(&net, &test, bits, sigma, 1)?;
        println!(
            "analog crossbars, {bits} bits/cell, write-noise sigma={sigma}: {:.1}%",
            100.0 * p.accuracy
        );
    }
    println!("\n2-bit cells tolerate high write noise; 6-bit cells do not (Fig. 13).");
    Ok(())
}
