//! In-tree stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds offline, so the real serde cannot be fetched. The
//! codebase only ever *derives* `Serialize`/`Deserialize` — it never
//! serializes through a format crate — and the companion `serde` stub
//! provides blanket impls of both traits for every type. The derives can
//! therefore expand to nothing: the attribute merely has to resolve.
//!
//! If a future PR introduces a real wire format, replace `vendor/serde*`
//! with the crates.io versions (the manifests point at `vendor/` via plain
//! path dependencies, so the swap is mechanical).

use proc_macro::TokenStream;

/// No-op derive: `serde::Serialize` is blanket-implemented in the stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive: `serde::Deserialize` is blanket-implemented in the stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
