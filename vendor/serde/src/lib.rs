//! In-tree stand-in for `serde` so the workspace builds offline.
//!
//! The PUMA crates derive `Serialize`/`Deserialize` on their config and
//! result types to keep the door open for snapshotting, but nothing in the
//! tree serializes through a data format yet. This stub keeps the derive
//! attributes and trait bounds compiling:
//!
//! - [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, so any `T: Serialize` bound is satisfiable;
//! - the derive macros (re-exported from the in-tree `serde_derive`)
//!   expand to nothing.
//!
//! Swapping in the real serde is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}

/// Stub of the `serde::de` module (trait re-exports only).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stub of the `serde::ser` module (trait re-exports only).
pub mod ser {
    pub use crate::Serialize;
}
