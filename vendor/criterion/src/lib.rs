//! In-tree stand-in for `criterion` so the workspace builds offline.
//!
//! Implements the subset the bench targets use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`], and
//! [`black_box`] — with a simple adaptive wall-clock timer instead of
//! criterion's statistical machinery.
//!
//! When a bench binary is invoked by `cargo test` (cargo passes `--test`
//! to `harness = false` targets), every benchmark body runs exactly once
//! as a smoke test and no timing is reported, mirroring real criterion.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Per-benchmark measurement budget in bench mode.
const TARGET_TIME: Duration = Duration::from_millis(250);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench targets with `--test`;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs (or, under `cargo test`, smoke-runs) one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, test_mode: self.test_mode };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
        } else if b.iters_done > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
            println!("{id:<40} {per_iter:>14.1} ns/iter ({} iters)", b.iters_done);
        } else {
            println!("{id:<40} (no iterations recorded)");
        }
        self
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` until the per-benchmark budget is spent
    /// (one warm-up call plus one timed call under `cargo test`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up; also the whole story in test mode
        if self.test_mode {
            self.iters_done += 1;
            return;
        }
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters_done += batch;
            self.elapsed = start.elapsed();
            if self.elapsed >= TARGET_TIME || self.iters_done >= 1_000_000 {
                break;
            }
            batch = batch.saturating_mul(2).min(1_000_000 - self.iters_done.min(999_999));
        }
    }
}

/// Collects benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running each group (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
