//! In-tree stand-in for `proptest` so the workspace builds offline.
//!
//! Implements the generative core of the proptest API that the PUMA test
//! suites use: the [`Strategy`] trait with `prop_map`/`prop_filter`/
//! `prop_flat_map`/`boxed`, range and tuple strategies, [`any`],
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! `prop::array::uniform*`, [`Just`], `prop_oneof!`, and the `proptest!`
//! test macro with `ProptestConfig::with_cases`.
//!
//! Two deliberate departures from the real crate:
//!
//! - **No shrinking.** A failing case panics with the assertion message
//!   (which, for `prop_assert_eq!`, already prints both values). Re-running
//!   reproduces it exactly, because —
//! - **Fully deterministic.** Each `proptest!` test seeds its RNG from a
//!   hash of its own function name, so every run of `cargo test` explores
//!   the identical case sequence. That determinism is a requirement of the
//!   repo's differential harness (golden results must not flake in CI).
//!
//! Swapping in the real proptest is a manifest-only change; the API subset
//! here is call-compatible.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Configuration and the deterministic RNG behind every strategy.

    /// Per-test configuration (stand-in for `proptest::test_runner::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (FNV-1a hash,
        /// expanded through SplitMix64).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// Seeds deterministically from a 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`; `bound` must be nonzero.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "next_index: empty bound");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value` (stand-in for `proptest::strategy::Strategy`).
///
/// Unlike the real trait there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, retrying (up to an internal cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy for use in heterogeneous collections
    /// (e.g. the arms of `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields clones of one value (stand-in for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (backs `prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_index(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

// ---- Range strategies ----------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- Tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- Arbitrary / any -----------------------------------------------------

/// Types with a canonical full-domain strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_unit_f64() - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (stand-in for `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- Collection / option / sample / array modules ------------------------

pub mod collection {
    //! `prop::collection` — sized collections of generated elements.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.next_index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `prop::option` — optional values.
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise (matches the real
    /// crate's bias toward the interesting variant).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! `prop::sample` — uniform selection from explicit value lists.
    use super::{Strategy, TestRng};

    /// Uniformly selects one of `items` (cloned per case).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice list");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.next_index(self.items.len())].clone()
        }
    }
}

pub mod array {
    //! `prop::array` — fixed-size arrays of generated elements.
    use super::{Strategy, TestRng};

    /// Array strategy running one element strategy `N` times.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Generic constructor behind the `uniformN` helpers.
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray { element }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// Fixed-size array strategy (stand-in for the same-named
            /// function in `proptest::array`).
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                uniform(element)
            }
        )+};
    }
    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
        uniform9 => 9, uniform10 => 10, uniform11 => 11, uniform12 => 12,
        uniform16 => 16, uniform24 => 24, uniform32 => 32,
    );
}

// ---- Macros --------------------------------------------------------------

/// Uniform choice among strategies of one value type.
///
/// Unlike the real crate, arms are unweighted; `w => strat` syntax is not
/// supported (nothing in-tree uses it).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion: plain `assert!` (no shrinking machinery to unwind).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar used in-tree: an
/// optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod strategy {
    //! Re-exports mirroring `proptest::strategy`.
    pub use super::{BoxedStrategy, Filter, FlatMap, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("unit");
        let s = (0u16..3, 1i32..=5).prop_map(|(a, b)| (a, b));
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 3);
            assert!((1..=5).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::from_name("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn determinism_across_runner_instances() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        let s = crate::collection::vec(any::<i16>(), 0..16);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(v in prop::collection::vec(0u8..10, 1..9), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }
}
