//! In-tree stand-in for the `rand` crate so the workspace builds offline.
//!
//! Provides the slice of the rand 0.8 API the PUMA crates use: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`], and uniform sampling
//! of primitives and ranges. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! exactly what the reproducibility story here needs (the real `StdRng`
//! makes no cross-version stability promise at all).

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface (the subset of rand 0.8's trait the tree uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from uniform bits (stands in for
/// `Distribution<T> for Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integers that support unbiased-enough range sampling.
pub trait UniformInt: Copy {
    /// Uniform draw in `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — the stand-in for `rand::rngs::StdRng`.
    ///
    /// Unlike the real `StdRng`, the stream for a given seed is stable
    /// forever, which the noise-injection tests rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce one from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
        }
    }
}
